#!/bin/sh
# End-to-end smoke of the experiment service: start leakboundd on a
# temp unix socket, round-trip a run request twice (cold then warm —
# the warm one must be answered from the rendered-response LRU with
# the cold render's exact bytes), then two *cold* engine-pinned
# requests (--engine analytic vs sim) that must digest identically,
# check /stats (including exact response_lru_hits accounting), then
# SIGTERM and require a clean drain (exit 0, socket removed).  Invoked
# by CTest as: serve_smoke.sh <leakboundd> <leakbound-client>.
#
# The daemon is launched directly (never inside a compound command) so
# $! is the daemon's own PID and the TERM we send exercises *its*
# drain path, not a wrapper shell's.
set -eu

DAEMON=$1
CLIENT=$2

DIR=$(mktemp -d)
PID=
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$DIR"
}
trap cleanup EXIT

SOCK=$DIR/leakboundd.sock
"$DAEMON" --socket "$SOCK" --workers 2 --queue-limit 8 \
    --cache-dir "$DIR/cache" >"$DIR/daemon.log" 2>&1 &
PID=$!

# Wait for the readiness line, then for the socket to answer.
up=0
i=0
while [ $i -lt 100 ]; do
    if "$CLIENT" --socket "$SOCK" --ping >/dev/null 2>&1; then
        up=1
        break
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        break
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ $up -ne 1 ]; then
    echo "serve_smoke: daemon never became ready" >&2
    cat "$DIR/daemon.log" >&2
    exit 1
fi

# Cold, then warm: the second response is answered straight from the
# rendered-response LRU, so it must be byte-for-byte the cold
# response — same digests, and no simulation or cache load behind it.
"$CLIENT" --socket "$SOCK" --benchmarks gzip --instructions 50000 \
    >"$DIR/run1.json"
"$CLIENT" --socket "$SOCK" --benchmarks gzip --instructions 50000 \
    >"$DIR/run2.json"
fnv1=$(grep -o '"result_fnv": "[0-9a-f]*"' "$DIR/run1.json")
fnv2=$(grep -o '"result_fnv": "[0-9a-f]*"' "$DIR/run2.json")
if [ -z "$fnv1" ] || [ "$fnv1" != "$fnv2" ]; then
    echo "serve_smoke: warm result differs from cold" >&2
    echo "cold: $fnv1" >&2
    echo "warm: $fnv2" >&2
    exit 1
fi
if ! cmp -s "$DIR/run1.json" "$DIR/run2.json"; then
    echo "serve_smoke: LRU-hit response is not byte-identical to the" \
         "cold render" >&2
    exit 1
fi

# Cold engine split: the same analyzable benchmark under --engine
# analytic and --engine sim fingerprints to distinct cache entries
# (both requests are cold) yet the simulation payloads must be
# byte-identical — the fast path is exact, not approximate.
"$CLIENT" --socket "$SOCK" --benchmarks stream --instructions 200000 \
    --engine analytic >"$DIR/run3.json"
"$CLIENT" --socket "$SOCK" --benchmarks stream --instructions 200000 \
    --engine sim >"$DIR/run4.json"
fnv3=$(grep -o '"result_fnv": "[0-9a-f]*"' "$DIR/run3.json")
fnv4=$(grep -o '"result_fnv": "[0-9a-f]*"' "$DIR/run4.json")
if [ -z "$fnv3" ] || [ "$fnv3" != "$fnv4" ]; then
    echo "serve_smoke: analytic cold digest differs from sim" >&2
    echo "analytic: $fnv3" >&2
    echo "sim:      $fnv4" >&2
    exit 1
fi
for f in run3 run4; do
    grep -q '"from_cache": true' "$DIR/$f.json" && {
        echo "serve_smoke: engine request $f was not cold" >&2
        cat "$DIR/$f.json" >&2
        exit 1
    }
done
grep -q '"engine": "analytic"' "$DIR/run3.json" || {
    echo "serve_smoke: analytic request did not commit" >&2
    cat "$DIR/run3.json" >&2
    exit 1
}
grep -q '"engine": "sim"' "$DIR/run4.json" || {
    echo "serve_smoke: sim request not reported as sim" >&2
    cat "$DIR/run4.json" >&2
    exit 1
}

"$CLIENT" --socket "$SOCK" --stats >"$DIR/stats.json"
grep -q '"requests_served": 4' "$DIR/stats.json" || {
    echo "serve_smoke: stats did not count all four runs" >&2
    cat "$DIR/stats.json" >&2
    exit 1
}
grep -q '"analytic_runs": 1' "$DIR/stats.json" || {
    echo "serve_smoke: stats did not count the analytic run" >&2
    cat "$DIR/stats.json" >&2
    exit 1
}
# Exactly one LRU hit (the warm gzip rerun); the engine-pinned pair
# fingerprints apart and must not alias into it.
grep -q '"response_lru_hits": 1' "$DIR/stats.json" || {
    echo "serve_smoke: stats did not show exactly one response-LRU" \
         "hit" >&2
    cat "$DIR/stats.json" >&2
    exit 1
}

# Graceful drain: SIGTERM, daemon exits 0, socket gone.
kill -TERM "$PID"
status=0
wait "$PID" || status=$?
PID=
if [ $status -ne 0 ]; then
    echo "serve_smoke: daemon exited $status on SIGTERM" >&2
    cat "$DIR/daemon.log" >&2
    exit 1
fi
if [ -e "$SOCK" ]; then
    echo "serve_smoke: socket left behind after drain" >&2
    exit 1
fi

# ---- Fleet phase: 2-shard supervisor over the same cache ----------
# Start a supervised fleet, route a run through it (warm — the shard
# loads the result the single daemon just simulated, proving the
# cache is shared), SIGKILL one shard, confirm the supervisor respawns
# it and the fleet still answers byte-identically, then drain clean.
FSOCK=$DIR/fleet.sock
"$DAEMON" --socket "$FSOCK" --shards 2 --workers 1 \
    --restart-backoff-ms 50 --restart-backoff-cap-ms 400 \
    --health-interval-ms 200 \
    --cache-dir "$DIR/cache" >"$DIR/fleet.log" 2>&1 &
PID=$!

up=0
i=0
while [ $i -lt 100 ]; do
    if "$CLIENT" --socket "$FSOCK" --ping >/dev/null 2>&1; then
        up=1
        break
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        break
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ $up -ne 1 ]; then
    echo "serve_smoke: fleet never became ready" >&2
    cat "$DIR/fleet.log" >&2
    exit 1
fi

"$CLIENT" --socket "$FSOCK" --shards 2 --benchmarks gzip \
    --instructions 50000 >"$DIR/fleet1.json"
grep -q '"from_cache": true' "$DIR/fleet1.json" || {
    echo "serve_smoke: fleet shard did not share the artifact cache" >&2
    cat "$DIR/fleet1.json" >&2
    exit 1
}

# SIGKILL one shard (the supervisor's children are the shards) and
# wait for the respawn: two live shard children again, one of them new.
SHARD=$(pgrep -P "$PID" | head -n 1)
if [ -z "$SHARD" ]; then
    echo "serve_smoke: could not find a shard child to kill" >&2
    cat "$DIR/fleet.log" >&2
    exit 1
fi
kill -9 "$SHARD"
recovered=0
i=0
while [ $i -lt 100 ]; do
    live=$(pgrep -P "$PID" | grep -cv "^$SHARD\$" || true)
    if [ "$live" -ge 2 ]; then
        recovered=1
        break
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ $recovered -ne 1 ]; then
    echo "serve_smoke: supervisor never respawned the killed shard" >&2
    cat "$DIR/fleet.log" >&2
    exit 1
fi

# The revived fleet answers the same request with the same bytes, and
# the supervisor's aggregated stats admit to the restart.
"$CLIENT" --socket "$FSOCK" --shards 2 --benchmarks gzip \
    --instructions 50000 >"$DIR/fleet2.json"
if ! cmp -s "$DIR/fleet1.json" "$DIR/fleet2.json"; then
    echo "serve_smoke: fleet response changed across a shard" \
         "restart" >&2
    exit 1
fi
"$CLIENT" --socket "$FSOCK" --stats >"$DIR/fleet_stats.json"
grep -q '"restarts_total": 1' "$DIR/fleet_stats.json" || {
    echo "serve_smoke: fleet stats did not count the restart" >&2
    cat "$DIR/fleet_stats.json" >&2
    exit 1
}

# Graceful fleet drain: SIGTERM fans out, supervisor exits 0, control
# socket gone.
kill -TERM "$PID"
status=0
wait "$PID" || status=$?
PID=
if [ $status -ne 0 ]; then
    echo "serve_smoke: fleet exited $status on SIGTERM" >&2
    cat "$DIR/fleet.log" >&2
    exit 1
fi
if [ -e "$FSOCK" ]; then
    echo "serve_smoke: control socket left behind after fleet drain" >&2
    exit 1
fi

echo "serve_smoke: ok"
