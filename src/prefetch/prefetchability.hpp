/**
 * @file
 * Prefetchability reporting (paper Figure 9).
 *
 * Summarizes an interval population into the paper's three length
 * buckets — (0, a], (a, b], (b, +inf) — split by prefetch class, and
 * computes the headline "prefetchability" ratios (prefetchable
 * intervals / total intervals).
 */

#ifndef LEAKBOUND_PREFETCH_PREFETCHABILITY_HPP
#define LEAKBOUND_PREFETCH_PREFETCHABILITY_HPP

#include "core/inflection.hpp"
#include "interval/interval_histogram.hpp"

namespace leakbound::prefetch {

/** Interval counts for one length bucket of Figure 9. */
struct BucketBreakdown
{
    std::uint64_t next_line = 0;        ///< NL-prefetchable intervals
    std::uint64_t stride = 0;           ///< stride-prefetchable intervals
    std::uint64_t non_prefetchable = 0; ///< the rest

    /** All intervals in the bucket. */
    std::uint64_t total() const
    {
        return next_line + stride + non_prefetchable;
    }
};

/** The full Figure 9 summary for one cache. */
struct PrefetchabilityReport
{
    BucketBreakdown short_bucket;  ///< (0, a]   — kept active, counted NP
    BucketBreakdown drowsy_bucket; ///< (a, b]
    BucketBreakdown sleep_bucket;  ///< (b, +inf)

    /** Fraction of all Inner intervals covered by next-line. */
    double next_line_fraction = 0.0;
    /** Fraction covered by stride (disjoint from next-line). */
    double stride_fraction = 0.0;
    /** Total prefetchability (the paper's headline per-cache number). */
    double total_fraction = 0.0;
};

/**
 * Build the report from an interval population and the inflection
 * points of the technology under study.  Only Inner intervals
 * participate (the paper's prefetchability is about re-accesses);
 * intervals no longer than `a` are counted non-prefetchable, exactly
 * as the paper specifies.
 */
PrefetchabilityReport
analyze_prefetchability(const interval::IntervalHistogramSet &set,
                        const core::InflectionPoints &points);

} // namespace leakbound::prefetch

#endif // LEAKBOUND_PREFETCH_PREFETCHABILITY_HPP
