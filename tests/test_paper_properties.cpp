/**
 * @file
 * Paper-level property tests: every structural claim the evaluation
 * section makes, checked across all four technology nodes on seeded
 * synthetic interval populations (parameterized sweeps).  These are
 * the claims the bench suite visualizes; here they are asserted.
 */

#include <gtest/gtest.h>

#include "core/generalized_model.hpp"
#include "core/policies.hpp"
#include "core/savings.hpp"
#include "power/technology.hpp"
#include "util/random.hpp"

using namespace leakbound;
using namespace leakbound::core;
using interval::Interval;
using interval::IntervalHistogramSet;
using interval::IntervalKind;
using interval::PrefetchClass;

namespace {

/** Population with all kinds, classes and regimes represented. */
std::vector<Interval>
rich_population(std::uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<Interval> out;
    for (int i = 0; i < 4000; ++i) {
        Interval iv;
        iv.kind = IntervalKind::Inner;
        iv.length = rng.next_below(1 << (3 + rng.next_below(19)));
        iv.pf = static_cast<PrefetchClass>(rng.next_below(3));
        iv.ends_in_reuse = rng.next_bool(0.6);
        out.push_back(iv);
    }
    for (int i = 0; i < 32; ++i) {
        Interval lead;
        lead.kind = IntervalKind::Leading;
        lead.length = rng.next_below(1 << 18);
        lead.ends_in_reuse = false;
        out.push_back(lead);
        Interval trail;
        trail.kind = IntervalKind::Trailing;
        trail.length = rng.next_below(1 << 20);
        trail.ends_in_reuse = false;
        out.push_back(trail);
        Interval untouched;
        untouched.kind = IntervalKind::Untouched;
        untouched.length = 3'000'000;
        untouched.ends_in_reuse = false;
        out.push_back(untouched);
    }
    return out;
}

struct Case
{
    power::TechNode node;
    std::uint64_t seed;
};

std::string
case_name(const ::testing::TestParamInfo<Case> &info)
{
    const std::string n = power::node_params(info.param.node).name;
    return "Nm" + n.substr(0, n.size() - 2) + "_seed" +
           std::to_string(info.param.seed);
}

} // namespace

class PaperProperties : public ::testing::TestWithParam<Case>
{
  protected:
    void
    SetUp() override
    {
        tech_ = power::node_params(GetParam().node);
        raw_ = rich_population(GetParam().seed);
    }

    double
    savings(const PolicyPtr &policy) const
    {
        // Baseline = the population's own frame-time, so AlwaysActive
        // is exactly 0% savings (synthetic populations don't tile a
        // frames x cycles rectangle).
        std::uint64_t total = 0;
        for (const Interval &iv : raw_)
            total += iv.length;
        return evaluate_policy_raw(*policy, raw_, 1, total).savings;
    }

    power::TechnologyParams tech_;
    std::vector<Interval> raw_;
};

TEST_P(PaperProperties, SchemeDominanceChain)
{
    // Fig. 8's ordering: the oracle hybrid bounds everything; the
    // oracle variants bound their non-oracle counterparts.
    const EnergyModel model(tech_);
    const auto points = compute_inflection(model);
    const std::vector<PrefetchClass> both = {PrefetchClass::NextLine,
                                             PrefetchClass::Stride};

    const double hybrid = savings(make_opt_hybrid(model));
    EXPECT_GE(hybrid, savings(make_opt_drowsy(model)) - 1e-12);
    EXPECT_GE(hybrid,
              savings(make_opt_sleep(model, points.drowsy_sleep)) - 1e-12);
    EXPECT_GE(hybrid,
              savings(make_prefetch(model, PrefetchVariant::B, both)) -
                  1e-12);
    EXPECT_GE(savings(make_opt_sleep(model, 10'000)),
              savings(make_decay_sleep(model, 10'000)) - 1e-12);
    EXPECT_GE(savings(make_prefetch(model, PrefetchVariant::B, both)),
              savings(make_prefetch(model, PrefetchVariant::A, both)) -
                  1e-12);
    EXPECT_NEAR(savings(make_always_active(model)), 0.0, 1e-9);
}

TEST_P(PaperProperties, Fig7SweepIsMonotone)
{
    // Raising the minimum sleepable length can only lose savings, for
    // both the sleep-only and the hybrid scheme; hybrid dominates
    // sleep-only at every threshold.
    const EnergyModel model(tech_);
    double prev_sleep = 1.0, prev_hybrid = 1.0;
    for (Cycles threshold :
         {Cycles{1057}, Cycles{2000}, Cycles{5000}, Cycles{10000},
          Cycles{100000}}) {
        const double s = savings(make_opt_sleep(model, threshold));
        const double h = savings(make_hybrid(model, threshold));
        EXPECT_LE(s, prev_sleep + 1e-12) << threshold;
        EXPECT_LE(h, prev_hybrid + 1e-12) << threshold;
        EXPECT_GE(h, s - 1e-12) << threshold;
        prev_sleep = s;
        prev_hybrid = h;
    }
}

TEST_P(PaperProperties, MoreCoverageNeverHurtsPrefetch)
{
    // Enabling the stride class on top of next-line can only help
    // (Section 5.2: stride catches what next-line misses).
    const EnergyModel model(tech_);
    for (PrefetchVariant variant :
         {PrefetchVariant::A, PrefetchVariant::B}) {
        const double nl_only = savings(
            make_prefetch(model, variant, {PrefetchClass::NextLine}));
        const double nl_stride = savings(make_prefetch(
            model, variant,
            {PrefetchClass::NextLine, PrefetchClass::Stride}));
        EXPECT_GE(nl_stride, nl_only - 1e-12);
    }
}

TEST_P(PaperProperties, DecayImprovesOnNothingOnlyWithCounter)
{
    // The decay scheme must still beat doing nothing despite its
    // counter overhead on this population (sanity floor), and a
    // counter-free decay must beat the counted one.
    const EnergyModel model(tech_);
    power::TechnologyParams free_tech = tech_;
    free_tech.decay_counter_overhead = 0.0;
    const EnergyModel free_model(free_tech);

    const double counted = savings(make_decay_sleep(model, 10'000));
    const double free_decay =
        savings(make_decay_sleep(free_model, 10'000));
    EXPECT_GE(free_decay, counted - 1e-12);
}

TEST_P(PaperProperties, SavingsAlwaysInUnitInterval)
{
    const EnergyModel model(tech_);
    const auto points = compute_inflection(model);
    for (const auto &policy :
         {make_always_active(model), make_opt_drowsy(model),
          make_opt_sleep(model, points.drowsy_sleep),
          make_decay_sleep(model, 10'000), make_opt_hybrid(model)}) {
        const double s = savings(policy);
        EXPECT_GE(s, -1e-12) << policy->name();
        EXPECT_LE(s, 1.0) << policy->name();
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllNodesAndSeeds, PaperProperties,
    ::testing::Values(Case{power::TechNode::Nm70, 1},
                      Case{power::TechNode::Nm70, 2},
                      Case{power::TechNode::Nm100, 1},
                      Case{power::TechNode::Nm100, 2},
                      Case{power::TechNode::Nm130, 1},
                      Case{power::TechNode::Nm130, 2},
                      Case{power::TechNode::Nm180, 1},
                      Case{power::TechNode::Nm180, 2}),
    case_name);
