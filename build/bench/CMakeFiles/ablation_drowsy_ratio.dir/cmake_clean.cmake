file(REMOVE_RECURSE
  "CMakeFiles/ablation_drowsy_ratio.dir/ablation_drowsy_ratio.cpp.o"
  "CMakeFiles/ablation_drowsy_ratio.dir/ablation_drowsy_ratio.cpp.o.d"
  "ablation_drowsy_ratio"
  "ablation_drowsy_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_drowsy_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
