/**
 * @file
 * Implementation of gem5-style status and error reporting.
 */

#include "util/logging.hpp"

#include <cstdio>
#include <cstdlib>

namespace leakbound::util {

namespace {

Verbosity g_verbosity = Verbosity::Normal;

} // namespace

void
set_verbosity(Verbosity v)
{
    g_verbosity = v;
}

Verbosity
verbosity()
{
    return g_verbosity;
}

bool
debug_enabled()
{
    return g_verbosity == Verbosity::Debug;
}

namespace detail {

void
panic_impl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

void
fatal_impl(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::fflush(stderr);
    // User error, not a leakbound bug: exit cleanly with the documented
    // status.  Aborting (and possibly dumping core) is reserved for
    // panic(), which signals a violated internal invariant.
    std::exit(kFatalExitCode);
}

void
warn_impl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform_impl(const std::string &msg)
{
    if (g_verbosity != Verbosity::Quiet)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
debug_impl(const std::string &msg)
{
    std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace detail

} // namespace leakbound::util
