/**
 * @file
 * Exact policy evaluation over interval populations.
 *
 * evaluate_policy() computes the total leakage (+ induced dynamic)
 * energy a policy dissipates over a run, and the savings relative to
 * the all-active baseline (the paper's y-axis).  Evaluation runs over
 * the histogram cells of an IntervalHistogramSet and is exact because
 * every policy's energy is linear in interval length within a cell
 * (verified: the policy's published thresholds must all be histogram
 * edges, else this panics).
 */

#ifndef LEAKBOUND_CORE_SAVINGS_HPP
#define LEAKBOUND_CORE_SAVINGS_HPP

#include <optional>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "interval/interval_histogram.hpp"
#include "util/status.hpp"

namespace leakbound::core {

/** Outcome of evaluating one policy on one interval population. */
struct SavingsResult
{
    std::string policy;        ///< scheme name
    Energy baseline = 0.0;     ///< all-active energy (frames * cycles)
    Energy total = 0.0;        ///< policy energy incl. standing overhead
    Energy overhead = 0.0;     ///< standing-overhead portion of total
    double savings = 0.0;      ///< 1 - total/baseline
    std::uint64_t induced_misses = 0; ///< slept reuse-ending inner intervals

    /** Interval counts by the mode the policy mostly used. */
    std::uint64_t active_intervals = 0;
    std::uint64_t drowsy_intervals = 0;
    std::uint64_t sleep_intervals = 0;

    /** Frame-cycles by dominant mode (sums to baseline). */
    Energy active_cycles = 0.0;
    Energy drowsy_cycles = 0.0;
    Energy sleep_cycles = 0.0;
};

/**
 * Evaluate @p policy on @p set exactly.  Panics if the histogram's bin
 * edges miss any policy threshold (build the set with the policy's
 * thresholds as extra edges; see core::Experiment which automates it).
 */
SavingsResult evaluate_policy(const Policy &policy,
                              const interval::IntervalHistogramSet &set);

/**
 * Reference evaluator over raw intervals (O(n) in interval count);
 * exists to validate the histogram path in tests.
 * @param num_frames / @p total_cycles supply the baseline denominator.
 */
SavingsResult evaluate_policy_raw(const Policy &policy,
                                  const std::vector<interval::Interval> &raw,
                                  std::uint64_t num_frames,
                                  Cycles total_cycles);

/**
 * Combine per-benchmark results into a suite aggregate by summing
 * energies (the paper's "average" bars): savings = 1 - ΣE/ΣB.
 */
SavingsResult combine_results(const std::vector<SavingsResult> &results);

/** How one grid cell's evaluation died. */
struct GridFailure
{
    std::size_t cell = 0;     ///< row-major cell index
    std::string policy;       ///< the cell's policy name
    util::ErrorKind kind = util::ErrorKind::Internal;
    std::string message;
};

/** Result of a fault-isolated grid evaluation. */
struct GridOutcome
{
    /** Row-major cells; nullopt where that evaluation failed. */
    std::vector<std::optional<SavingsResult>> cells;
    /** One entry per empty cell, in cell order. */
    std::vector<GridFailure> failures;
};

/**
 * Evaluate every (policy, population) pair of a grid, fanning the
 * cells out over a util::ThreadPool of @p jobs workers (resolved via
 * ThreadPool::effective_jobs; <= 1 runs serially on the caller).
 *
 * Returns the grid row-major: cell [p * sets.size() + s] is policy p
 * evaluated on population s.  Evaluation is a pure function of
 * (policy, set), and results are merged back in submission order, so
 * the output is bit-identical to the serial double loop for every
 * jobs value — the suite runner's determinism contract one level down.
 *
 * Fault isolation: an exception thrown while evaluating one cell is
 * caught at the worker boundary and recorded in failures; every other
 * cell still evaluates and lands byte-identical to a failure-free run.
 */
GridOutcome
evaluate_policy_grid_isolated(
    const std::vector<const Policy *> &policies,
    const std::vector<const interval::IntervalHistogramSet *> &sets,
    unsigned jobs = 1);

/**
 * All-or-nothing wrapper over evaluate_policy_grid_isolated(): the
 * first cell failure is rethrown as util::StatusError.
 */
std::vector<SavingsResult>
evaluate_policy_grid(const std::vector<const Policy *> &policies,
                     const std::vector<const interval::IntervalHistogramSet *> &sets,
                     unsigned jobs = 1);

} // namespace leakbound::core

#endif // LEAKBOUND_CORE_SAVINGS_HPP
