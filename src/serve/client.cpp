/**
 * @file
 * Implementation of the leakboundd client helpers.
 */

#include "serve/client.hpp"

#include <chrono>
#include <mutex>
#include <set>
#include <thread>

#include "util/fingerprint.hpp"

namespace leakbound::serve {

util::Expected<util::net::Socket>
connect_endpoint(const Endpoint &endpoint)
{
    if (!endpoint.unix_path.empty())
        return util::net::connect_unix(endpoint.unix_path);
    if (endpoint.tcp_port != 0)
        return util::net::connect_tcp(endpoint.tcp_host,
                                      endpoint.tcp_port);
    return util::Status(util::ErrorKind::InvalidArgument,
                        "endpoint needs a socket path or a TCP port");
}

std::string
build_run_request(const RunRequest &request)
{
    util::JsonWriter w;
    w.begin_object();
    w.key("type").value("run");
    w.key("benchmarks").value(request.benchmarks);
    w.key("instructions").value(request.instructions);
    if (request.nl_lead_time != 0)
        w.key("nl_lead_time").value(request.nl_lead_time);
    if (request.collect_l2)
        w.key("collect_l2").value(true);
    if (!request.standard_edges)
        w.key("standard_edges").value(false);
    if (!request.extra_edges.empty()) {
        w.key("extra_edges").begin_array();
        for (const std::uint64_t edge : request.extra_edges)
            w.value(edge);
        w.end_array();
    }
    if (request.want_payload)
        w.key("payload").value(true);
    if (request.engine != "auto")
        w.key("engine").value(request.engine);
    w.end_object();
    return w.str();
}

std::string
build_stats_request()
{
    util::JsonWriter w;
    w.begin_object();
    w.key("type").value("stats");
    w.end_object();
    return w.str();
}

std::string
build_ping_request()
{
    util::JsonWriter w;
    w.begin_object();
    w.key("type").value("ping");
    w.end_object();
    return w.str();
}

util::Expected<util::JsonValue>
call(const util::net::Socket &socket, const std::string &request_json,
     std::size_t max_frame, std::string *raw_frame)
{
    if (util::Status sent = send_frame(socket, request_json, max_frame);
        !sent.ok())
        return sent;
    auto frame = recv_frame(socket, max_frame);
    if (!frame)
        return frame.status();
    if (raw_frame != nullptr)
        *raw_frame = frame.value();
    auto parsed = util::json_parse(frame.value());
    if (!parsed)
        return parsed.status();
    util::JsonValue response = parsed.take();
    if (!response.is_object()) {
        return util::Status(util::ErrorKind::CorruptData,
                            "response is not a JSON object");
    }
    const util::JsonValue *status = response.find("status");
    if (status == nullptr || !status->is_string()) {
        return util::Status(util::ErrorKind::CorruptData,
                            "response lacks a string \"status\"");
    }
    if (status->string_value() == "ok")
        return response;

    // An error frame: rebuild the typed Status the server serialized.
    const util::JsonValue *kind = response.find("kind");
    const util::JsonValue *message = response.find("message");
    util::ErrorKind decoded = util::ErrorKind::Internal;
    if (kind != nullptr && kind->is_string()) {
        if (auto known =
                util::error_kind_from_name(kind->string_value());
            known && *known != util::ErrorKind::None)
            decoded = *known;
    }
    return util::Status(decoded,
                        message != nullptr && message->is_string()
                            ? message->string_value()
                            : "server-side error");
}

util::Expected<util::JsonValue>
call_endpoint(const Endpoint &endpoint, const std::string &request_json,
              std::size_t max_frame, std::string *raw_frame)
{
    auto socket = connect_endpoint(endpoint);
    if (!socket)
        return socket.status();
    return call(socket.value(), request_json, max_frame, raw_frame);
}

LoadReport
run_load(const Endpoint &endpoint, const RunRequest &request,
         std::uint64_t total, unsigned concurrency,
         std::size_t max_frame)
{
    const std::string request_json = build_run_request(request);
    LoadReport report;
    std::mutex mutex;
    std::set<std::string> fingerprints;
    std::set<std::uint64_t> response_digests;
    std::uint64_t next = 0;

    const auto begun = std::chrono::steady_clock::now();
    auto worker = [&] {
        for (;;) {
            {
                std::lock_guard<std::mutex> lock(mutex);
                if (next >= total)
                    return;
                ++next;
            }
            const auto sent_at = std::chrono::steady_clock::now();
            std::string raw;
            auto response = call_endpoint(endpoint, request_json,
                                          max_frame, &raw);
            const double ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - sent_at)
                    .count();

            std::lock_guard<std::mutex> lock(mutex);
            ++report.sent;
            report.latency_ms.add(ms);
            if (!response) {
                switch (response.status().kind()) {
                  case util::ErrorKind::Overloaded:
                    ++report.overloaded;
                    break;
                  case util::ErrorKind::ShuttingDown:
                    ++report.shutting_down;
                    break;
                  default:
                    ++report.other_errors;
                }
                continue;
            }
            ++report.ok;
            const util::JsonValue &body = response.value();
            if (const util::JsonValue *fp =
                    body.find("request_fingerprint");
                fp != nullptr && fp->is_string())
                fingerprints.insert(fp->string_value());
            response_digests.insert(
                util::fnv1a(raw.data(), raw.size()));
        }
    };

    std::vector<std::thread> threads;
    const unsigned workers = concurrency == 0 ? 1 : concurrency;
    threads.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads.emplace_back(worker);
    for (std::thread &thread : threads)
        thread.join();

    report.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      begun)
            .count();
    report.distinct_fingerprints = fingerprints.size();
    report.distinct_responses = response_digests.size();
    return report;
}

} // namespace leakbound::serve
