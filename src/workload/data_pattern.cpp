/**
 * @file
 * Implementation of the data-pattern generators.
 */

#include "workload/data_pattern.hpp"

#include <numeric>

#include "util/logging.hpp"

namespace leakbound::workload {

namespace {

class SequentialPattern final : public DataPattern
{
  public:
    SequentialPattern(Addr base, std::uint64_t region, std::uint32_t step)
        : base_(base), region_(region), step_(step)
    {
        LEAKBOUND_ASSERT(region_ > 0 && step_ > 0, "degenerate stream");
    }

    Addr
    next() override
    {
        const Addr a = base_ + offset_;
        offset_ += step_;
        if (offset_ >= region_)
            offset_ = 0;
        return a;
    }

    void reset() override { offset_ = 0; }

    void
    fill(Addr *out, std::size_t n) override
    {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = next(); // devirtualized: final class
    }

    bool
    append_state(std::vector<std::uint64_t> &out) const override
    {
        out.push_back(offset_);
        return true;
    }

  private:
    Addr base_;
    std::uint64_t region_;
    std::uint32_t step_;
    std::uint64_t offset_ = 0;
};

class StridedPattern final : public DataPattern
{
  public:
    StridedPattern(Addr base, std::uint64_t elements,
                   std::uint32_t elem_bytes, std::uint64_t stride_elems)
        : base_(base), elements_(elements), elem_bytes_(elem_bytes),
          stride_(stride_elems)
    {
        LEAKBOUND_ASSERT(elements_ > 0 && elem_bytes_ > 0 && stride_ > 0,
                         "degenerate strided pattern");
    }

    Addr
    next() override
    {
        const Addr a = base_ + index_ * elem_bytes_;
        index_ += stride_;
        if (index_ >= elements_) {
            // Advance the phase so successive sweeps cover the gaps
            // between stride points, like a column-major inner loop.
            ++phase_;
            if (phase_ >= stride_)
                phase_ = 0;
            index_ = phase_;
        }
        return a;
    }

    void
    reset() override
    {
        index_ = 0;
        phase_ = 0;
    }

    void
    fill(Addr *out, std::size_t n) override
    {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = next(); // devirtualized: final class
    }

    bool
    append_state(std::vector<std::uint64_t> &out) const override
    {
        out.push_back(index_);
        out.push_back(phase_);
        return true;
    }

  private:
    Addr base_;
    std::uint64_t elements_;
    std::uint32_t elem_bytes_;
    std::uint64_t stride_;
    std::uint64_t index_ = 0;
    std::uint64_t phase_ = 0;
};

class RandomPattern final : public DataPattern
{
  public:
    RandomPattern(Addr base, std::uint64_t region, std::uint32_t align,
                  std::uint64_t seed)
        : base_(base), slots_(region / align), align_(align), seed_(seed),
          rng_(seed)
    {
        LEAKBOUND_ASSERT(slots_ > 0, "region smaller than alignment");
    }

    Addr
    next() override
    {
        return base_ + rng_.next_below(slots_) * align_;
    }

    void reset() override { rng_ = util::Rng(seed_); }

    void
    fill(Addr *out, std::size_t n) override
    {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = next(); // devirtualized: final class
    }

  private:
    Addr base_;
    std::uint64_t slots_;
    std::uint32_t align_;
    std::uint64_t seed_;
    util::Rng rng_;
};

class PointerChasePattern final : public DataPattern
{
  public:
    PointerChasePattern(Addr base, std::uint64_t nodes,
                        std::uint32_t node_bytes, std::uint64_t seed)
        : base_(base), node_bytes_(node_bytes), next_node_(nodes)
    {
        LEAKBOUND_ASSERT(nodes > 1, "pointer chase needs >= 2 nodes");
        // Build a single-cycle random permutation (Sattolo's algorithm)
        // so the chase visits every node before repeating.
        std::vector<std::uint64_t> order(nodes);
        std::iota(order.begin(), order.end(), 0);
        util::Rng rng(seed);
        for (std::uint64_t i = nodes - 1; i > 0; --i) {
            const std::uint64_t j = rng.next_below(i);
            std::swap(order[i], order[j]);
        }
        for (std::uint64_t i = 0; i + 1 < nodes; ++i)
            next_node_[order[i]] = order[i + 1];
        next_node_[order[nodes - 1]] = order[0];
    }

    Addr
    next() override
    {
        const Addr a = base_ + current_ * node_bytes_;
        current_ = next_node_[current_];
        return a;
    }

    void reset() override { current_ = 0; }

    void
    fill(Addr *out, std::size_t n) override
    {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = next(); // devirtualized: final class
    }

    bool
    append_state(std::vector<std::uint64_t> &out) const override
    {
        out.push_back(current_);
        return true;
    }

  private:
    Addr base_;
    std::uint32_t node_bytes_;
    std::vector<std::uint64_t> next_node_;
    std::uint64_t current_ = 0;
};

class StackPattern final : public DataPattern
{
  public:
    StackPattern(Addr top, std::uint64_t depth, std::uint64_t seed)
        : top_(top), depth_(depth / 8), seed_(seed), rng_(seed)
    {
        LEAKBOUND_ASSERT(depth_ > 0, "stack depth too small");
    }

    Addr
    next() override
    {
        // Random walk of the current depth; references cluster near
        // the top of the stack as real frames do.
        if (rng_.next_bool(0.5)) {
            if (pos_ + 1 < depth_)
                ++pos_;
        } else if (pos_ > 0) {
            --pos_;
        }
        const std::uint64_t jitter = rng_.next_below(4);
        const std::uint64_t slot =
            pos_ > jitter ? pos_ - jitter : 0;
        return top_ - (slot + 1) * 8;
    }

    void
    reset() override
    {
        rng_ = util::Rng(seed_);
        pos_ = 0;
    }

    void
    fill(Addr *out, std::size_t n) override
    {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = next(); // devirtualized: final class
    }

  private:
    Addr top_;
    std::uint64_t depth_;
    std::uint64_t seed_;
    util::Rng rng_;
    std::uint64_t pos_ = 0;
};

} // namespace

DataPatternPtr
make_sequential(Addr base, std::uint64_t region_bytes, std::uint32_t step)
{
    return std::make_unique<SequentialPattern>(base, region_bytes, step);
}

DataPatternPtr
make_strided(Addr base, std::uint64_t elements, std::uint32_t elem_bytes,
             std::uint64_t stride_elems)
{
    return std::make_unique<StridedPattern>(base, elements, elem_bytes,
                                            stride_elems);
}

DataPatternPtr
make_random(Addr base, std::uint64_t region_bytes, std::uint32_t align,
            std::uint64_t seed)
{
    return std::make_unique<RandomPattern>(base, region_bytes, align, seed);
}

DataPatternPtr
make_pointer_chase(Addr base, std::uint64_t nodes, std::uint32_t node_bytes,
                   std::uint64_t seed)
{
    return std::make_unique<PointerChasePattern>(base, nodes, node_bytes,
                                                 seed);
}

DataPatternPtr
make_stack(Addr top, std::uint64_t depth_bytes, std::uint64_t seed)
{
    return std::make_unique<StackPattern>(top, depth_bytes, seed);
}

} // namespace leakbound::workload
