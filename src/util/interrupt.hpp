/**
 * @file
 * Cooperative SIGINT/SIGTERM handling for long batch runs.
 *
 * A sweep over six benchmarks times many configs can run for minutes;
 * Ctrl-C used to discard every in-flight job's work.  Instead, the
 * bench binaries install an async-signal-safe handler that only sets a
 * flag; the suite runner polls it between (and at the start of) jobs,
 * stops dispatching, records the skipped jobs as `interrupted`
 * failures, and the report writer flushes a partial JSON report marked
 * `"interrupted": true` before exiting 128+signal.
 *
 * The handler installs with SA_RESETHAND: a second Ctrl-C falls back
 * to the default action and kills the process immediately, so a stuck
 * shutdown can always be escaped.
 */

#ifndef LEAKBOUND_UTIL_INTERRUPT_HPP
#define LEAKBOUND_UTIL_INTERRUPT_HPP

namespace leakbound::util {

/**
 * Install the flag-setting SIGINT/SIGTERM handlers (idempotent; the
 * first call wins).  Safe to call from any binary's startup path.
 */
void install_signal_handlers();

/** Has SIGINT/SIGTERM been observed since the last clear? */
bool interrupt_requested();

/** The observed signal number, or 0 when none is pending. */
int pending_signal();

/**
 * Conventional exit status for the pending signal (128 + signo), or 0
 * when no interrupt is pending.
 */
int interrupt_exit_code();

/** Record @p signal as if it had been delivered (tests). */
void simulate_interrupt(int signal);

/** Clear any pending interrupt (tests). */
void clear_interrupt();

} // namespace leakbound::util

#endif // LEAKBOUND_UTIL_INTERRUPT_HPP
