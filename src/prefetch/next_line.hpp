/**
 * @file
 * Next-line coverage monitor (paper Sections 5.1-5.2).
 *
 * Next-line prefetching fetches block B when block B-1 is touched.
 * The paper classifies an access interval as next-line prefetchable
 * when "one or more accesses to the previous cache line occurs"
 * within it: the prefetcher would then have re-fetched (or woken) the
 * line just in time for the closing access.
 *
 * The monitor records the last access time of every block; the
 * experiment glue asks, when an access to block B closes an interval
 * that opened at t0, whether B-1 was accessed after t0.
 */

#ifndef LEAKBOUND_PREFETCH_NEXT_LINE_HPP
#define LEAKBOUND_PREFETCH_NEXT_LINE_HPP

#include <vector>

#include "util/flat_map.hpp"
#include "util/types.hpp"

namespace leakbound::prefetch {

/** Tracks per-block last access times for next-line coverage tests. */
class NextLineMonitor
{
  public:
    /**
     * @param expected_blocks sizing hint for the underlying table.
     * The table grows automatically, so the default stays small: two
     * monitors are built per experiment, and pre-filling a
     * multi-megabyte table dominated short runs (profiled at half the
     * end-to-end pipeline time before the growth path was trusted).
     */
    explicit NextLineMonitor(std::size_t expected_blocks = 1 << 10);

    /** Record an access to @p block at @p cycle. */
    void record(Addr block, Cycle cycle) { last_access_.put(block, cycle); }

    /**
     * Would a next-line prefetcher cover an access to @p block closing
     * an interval that opened at @p open_since?  True when block-1 was
     * accessed strictly after @p open_since.
     */
    bool covers(Addr block, Cycle open_since) const;

    /**
     * Timeliness-aware variant: additionally require the trigger
     * access to precede the closing access at @p close_cycle by at
     * least @p lead_time cycles (the wakeup/re-fetch must have time to
     * complete).  The paper's accounting uses lead_time = 0; the
     * timeliness ablation uses the sleep exit path s3+s4.
     */
    bool
    covers(Addr block, Cycle open_since, Cycle close_cycle,
           Cycles lead_time) const
    {
        if (block == 0)
            return false;
        std::uint64_t when;
        if (!last_access_.get(block - 1, when))
            return false;
        const Cycle deadline =
            close_cycle >= lead_time ? close_cycle - lead_time : 0;
        const bool hit = when > open_since && when <= deadline;
        if (hit)
            ++covered_;
        return hit;
    }

    /** Coverage queries answered positively (stats). */
    std::uint64_t covered() const { return covered_; }

    /** Forget everything. */
    void reset();

    /**
     * Append the table as (block, now - last_access) pairs sorted by
     * block — a canonical, translation-invariant snapshot for the
     * analytic state signature.  The covered() counter is excluded
     * (reporting only; it never influences future coverage answers).
     */
    void append_state(std::vector<std::uint64_t> &out, Cycle now) const;

    /**
     * Shift every recorded access time forward by @p delta — the
     * analytic fast path's time warp across skipped periods.
     */
    void warp(Cycles delta);

  private:
    util::FlatMap last_access_;
    mutable std::uint64_t covered_ = 0;
};

} // namespace leakbound::prefetch

#endif // LEAKBOUND_PREFETCH_NEXT_LINE_HPP
