/**
 * @file
 * Multi-core shared-L2 simulator: N in-order cores with private L1s
 * over one shared L2, an MSI-style invalidation filter between the
 * L1Ds, and a deterministic cycle interleaver.
 *
 * The engine is the multicore counterpart of core::run_experiment:
 * per-core interval populations come from per-core collectors driven
 * by the exact CollectingListener the single-core engine uses, and the
 * shared L2's population comes from per-bank collectors whose merged
 * histogram is what the oracle bound is computed from.  An L2 line's
 * sleep interval ends when *any* core touches it through a miss or
 * kills a sharer's copy through the invalidation filter.
 *
 * Determinism contract: the interleaver is a single-threaded loop that
 * always steps the core with the minimum (cycle, core_id) pair by
 * exactly one fetch group, so the event order — and therefore every
 * histogram, statistic, and serialized byte — is a pure function of
 * the configuration.  Results are byte-identical across --jobs values
 * and across runs, and the N=1 configuration reduces exactly to the
 * single-core engine (test_multicore_equivalence proves both).
 */

#ifndef LEAKBOUND_MULTICORE_MULTICORE_HPP
#define LEAKBOUND_MULTICORE_MULTICORE_HPP

#include <optional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "cpu/inorder_core.hpp"
#include "interval/interval_histogram.hpp"
#include "sim/cache.hpp"

namespace leakbound::multicore {

/** What one core of a multicore run produced. */
struct CoreOutcome
{
    /** The benchmark this core ran (its slot of the resolved mix). */
    std::string workload;
    /**
     * This core's run statistics; cycles is the core's own final
     * cycle, which can trail the run's end_cycle (cores retire their
     * instruction budgets at different rates).
     */
    cpu::CoreRunStats stats;
    core::CacheObservation icache; ///< this core's private L1I
    core::CacheObservation dcache; ///< this core's private L1D
    /** Copies of this core's L1D lines killed by other cores' stores. */
    std::uint64_t invalidations_received = 0;

    CoreOutcome(core::CacheObservation ic, core::CacheObservation dc)
        : icache(std::move(ic)), dcache(std::move(dc))
    {
    }
};

/** Everything one multicore run produced. */
struct MulticoreResult
{
    /**
     * Composite workload label: the benchmark name itself for N=1
     * (anchoring the byte-identity reduction), "mc<N>:a+b+..." for
     * N > 1.
     */
    std::string label;
    /** One entry per core, in core-id order. */
    std::vector<CoreOutcome> cores;
    /**
     * The shared L2's merged interval population (union of the
     * per-bank collectors), present when collect_l2 was set.
     */
    std::optional<core::CacheObservation> l2cache;
    /**
     * The per-bank L2 histogram sets the merged population came from
     * (empty unless collect_l2); exposed for the invalidation-
     * accounting property tests.
     */
    std::vector<interval::IntervalHistogramSet> l2_banks;
    sim::CacheStats l2;     ///< shared-L2 statistics
    Cycle end_cycle = 0;    ///< max core cycle; every collector's close
    /** L1D copies killed through the invalidation filter, in total. */
    std::uint64_t invalidations = 0;
    /** Stores that killed at least one remote copy. */
    std::uint64_t invalidating_stores = 0;
    /**
     * L2 intervals closed by an invalidation rather than a touch (a
     * store that hit its own L1D, so the L2 saw no access, but whose
     * coherence action reached the shared line).  Only counted while
     * collect_l2 is on — it exists to make every L2 interval boundary
     * attributable (accesses + these closes + trailing finalizes).
     */
    std::uint64_t l2_interval_closes = 0;
    /** See ExperimentResult::sim_path_effective (2N L1s + the L2). */
    std::string sim_path_effective;

    /**
     * Flatten into the single-core result shape: summed core stats
     * (cycles = end_cycle), per-level observations merged across
     * cores, workload = label.  For N=1 this is byte-identical (under
     * core::serialize_result) to the single-core engine's output.
     */
    core::ExperimentResult to_experiment_result() const;
};

/**
 * Resolve the per-core benchmark list: a non-empty config mix is taken
 * verbatim (validate() has pinned its length to core_count); an empty
 * mix replicates @p benchmark core_count times, which requires it to
 * be a suite benchmark (util::StatusError(InvalidArgument) otherwise —
 * multicore cores are constructed from names, not from a live workload
 * instance).
 */
std::vector<std::string>
resolve_mix(const std::string &benchmark,
            const core::ExperimentConfig &config);

/** The composite label for a resolved mix (see MulticoreResult). */
std::string mix_label(const std::vector<std::string> &names);

/**
 * Run the multicore simulation.  Throws util::StatusError with a typed
 * InvalidArgument status on a malformed config (config.validate(),
 * keep_raw — raw-interval retention is single-core only — or an
 * unresolvable mix).
 */
MulticoreResult run_multicore(const std::string &benchmark,
                              const core::ExperimentConfig &config);

/**
 * run_multicore() flattened to the single-core result shape (see
 * MulticoreResult::to_experiment_result); what core::run_experiment
 * dispatches to for multicore configs.
 */
core::ExperimentResult
run_multicore_summary(const std::string &benchmark,
                      const core::ExperimentConfig &config);

} // namespace leakbound::multicore

#endif // LEAKBOUND_MULTICORE_MULTICORE_HPP
