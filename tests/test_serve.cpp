/**
 * @file
 * Tests of the leakboundd service layer: request decoding, the
 * dedup/backpressure scheduler, graceful drain, and a full
 * daemon-in-a-thread round trip whose results must be byte-identical
 * to the offline suite runner.
 *
 * Carries the `serve` and `sanitize` CTest labels — the scheduler and
 * server are the repo's most thread-shaped code, so the tsan preset
 * runs this whole file under ThreadSanitizer.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>

#include "core/artifact_cache.hpp"
#include "core/experiment.hpp"
#include "core/experiment_request.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"
#include "util/fingerprint.hpp"
#include "util/json.hpp"
#include "util/net.hpp"
#include "util/status.hpp"

using namespace leakbound;
using namespace leakbound::serve;
namespace net = leakbound::util::net;

namespace {

/** A small decoded run request (one fast benchmark). */
core::ExperimentRequest
small_request(bool want_payload = false)
{
    auto parsed = util::json_parse(
        R"({"type":"run","benchmarks":["gzip"],"instructions":20000)"
        + std::string(want_payload ? R"(,"payload":true})" : "}"));
    EXPECT_TRUE(parsed.has_value());
    auto decoded = core::decode_experiment_request(parsed.value());
    EXPECT_TRUE(decoded.has_value()) << decoded.status().to_string();
    return decoded.take();
}

/** Gate the suite hook blocks on until the test opens it. */
struct Gate
{
    std::mutex mutex;
    std::condition_variable cv;
    bool open = false;
    std::atomic<std::uint64_t> entered{0};

    core::SuiteJobHook
    hook()
    {
        return [this](const std::string &) {
            std::unique_lock<std::mutex> lock(mutex);
            ++entered;
            cv.wait(lock, [this] { return open; });
        };
    }

    void
    release()
    {
        std::lock_guard<std::mutex> lock(mutex);
        open = true;
        cv.notify_all();
    }
};

/** Spin until @p predicate or the deadline; returns whether it held. */
template <typename F>
bool
eventually(F predicate,
           std::chrono::milliseconds deadline =
               std::chrono::seconds(10))
{
    const auto until = std::chrono::steady_clock::now() + deadline;
    while (std::chrono::steady_clock::now() < until) {
        if (predicate())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return predicate();
}

/** Parse a rendered response and return its "status" member. */
std::string
response_status(const std::string &frame)
{
    auto parsed = util::json_parse(frame);
    EXPECT_TRUE(parsed.has_value()) << frame;
    return parsed.value().find("status")->string_value();
}

std::string
response_kind(const std::string &frame)
{
    auto parsed = util::json_parse(frame);
    EXPECT_TRUE(parsed.has_value()) << frame;
    const util::JsonValue *kind = parsed.value().find("kind");
    return kind == nullptr ? "" : kind->string_value();
}

} // namespace

// -------------------------------------------------------- request decode

TEST(DecodeRequest, AcceptsTheFullSchemaAndAbsorbsStandardEdges)
{
    auto parsed = util::json_parse(
        R"({"type":"run","benchmarks":["gzip","mesa"],)"
        R"("instructions":50000,"nl_lead_time":32,"collect_l2":true,)"
        R"("extra_edges":[123,456],"payload":true})");
    ASSERT_TRUE(parsed.has_value());
    auto decoded = core::decode_experiment_request(parsed.value());
    ASSERT_TRUE(decoded.has_value()) << decoded.status().to_string();
    const core::ExperimentRequest &request = decoded.value();
    EXPECT_EQ(request.benchmarks,
              (std::vector<std::string>{"gzip", "mesa"}));
    EXPECT_EQ(request.config.instructions, 50'000u);
    EXPECT_EQ(request.config.nl_lead_time, 32u);
    EXPECT_TRUE(request.config.collect_l2);
    EXPECT_TRUE(request.want_payload);
    // standard_edges defaults on: the stock thresholds come first and
    // the request's own edges ride along.
    const auto &edges = request.config.extra_edges;
    EXPECT_GT(edges.size(), 2u);
    EXPECT_NE(std::find(edges.begin(), edges.end(), 123u), edges.end());
}

TEST(DecodeRequest, RejectsBadInputWithInvalidArgument)
{
    const char *cases[] = {
        R"({"type":"run"})",                          // no benchmarks
        R"({"type":"run","benchmarks":[]})",          // empty
        R"({"type":"run","benchmarks":["nope"]})",    // unknown name
        R"({"type":"run","benchmarks":[1]})",         // wrong type
        R"({"type":"run","benchmarks":["gzip"],"instructions":10})",
        R"({"type":"run","benchmarks":["gzip"],"instructions":-5})",
        R"({"type":"run","benchmarks":["gzip"],"jobs":4})",
        R"({"type":"run","benchmarks":["gzip"],"cache_dir":"/x"})",
        R"({"type":"run","benchmarks":["gzip"],"keep_raw":true})",
        R"({"type":"run","benchmarks":["gzip"],"typo_key":1})",
        R"({"type":"run","benchmarks":["gzip"],"extra_edges":[-1]})",
        R"({"type":"run","benchmarks":["gzip"],"engine":"warp"})",
        R"({"type":"run","benchmarks":["gzip"],"engine":1})",
    };
    for (const char *text : cases) {
        auto parsed = util::json_parse(text);
        ASSERT_TRUE(parsed.has_value()) << text;
        auto decoded = core::decode_experiment_request(parsed.value());
        ASSERT_FALSE(decoded.has_value()) << "accepted: " << text;
        EXPECT_EQ(decoded.status().kind(),
                  util::ErrorKind::InvalidArgument)
            << text;
    }
}

TEST(DecodeRequest, EnforcesTheDaemonInstructionCeiling)
{
    auto parsed = util::json_parse(
        R"({"type":"run","benchmarks":["gzip"],"instructions":200000})");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(core::decode_experiment_request(parsed.value(), 200'000)
                    .has_value());
    EXPECT_FALSE(
        core::decode_experiment_request(parsed.value(), 199'999)
            .has_value());
}

TEST(DecodeRequest, FingerprintSeparatesWhatMustNotShareResponses)
{
    const core::ExperimentRequest plain = small_request(false);
    const core::ExperimentRequest with_payload = small_request(true);
    EXPECT_EQ(core::fingerprint_request(plain),
              core::fingerprint_request(small_request(false)));
    // A payload-bearing response renders differently, so it must not
    // join a payload-free dedup group.
    EXPECT_NE(core::fingerprint_request(plain),
              core::fingerprint_request(with_payload));
    // Server-owned knobs are excluded: stamping them cannot split a
    // dedup group.
    core::ExperimentRequest stamped = small_request(false);
    stamped.config.jobs = 7;
    stamped.config.cache_dir = "/somewhere";
    stamped.config.ignore_interrupts = true;
    EXPECT_EQ(core::fingerprint_request(plain),
              core::fingerprint_request(stamped));
    // Engines key cache entries apart: analytic and simulated results
    // are byte-identical by construction, but letting them alias would
    // make a fast-path bug silently poison the sim engine's cache.
    core::ExperimentRequest pinned = small_request(false);
    pinned.config.engine = core::Engine::Sim;
    EXPECT_NE(core::fingerprint_request(plain),
              core::fingerprint_request(pinned));
}

// -------------------------------------------------------------- scheduler

TEST(Scheduler, DedupesConcurrentIdenticalRequestsIntoOneSimulation)
{
    constexpr unsigned kClients = 8;
    Gate gate;
    SchedulerConfig config;
    config.workers = 1;
    config.max_queue = 4;
    config.before_job = gate.hook();
    Scheduler scheduler(config);

    std::vector<std::shared_ptr<const std::string>> responses(kClients);
    std::vector<util::Status> failures(kClients);
    std::vector<std::thread> clients;
    for (unsigned i = 0; i < kClients; ++i) {
        clients.emplace_back([&, i] {
            auto response = scheduler.submit(small_request());
            if (response)
                responses[i] = response.take();
            else
                failures[i] = response.status();
        });
    }

    // Everyone must be inside submit() before the one simulation is
    // allowed to proceed, so all eight share the in-flight job.
    ASSERT_TRUE(eventually([&] {
        return scheduler.counters().submitted == kClients &&
               gate.entered.load() >= 1;
    }));
    gate.release();
    for (std::thread &client : clients)
        client.join();

    const SchedulerCounters counters = scheduler.counters();
    EXPECT_EQ(counters.simulations, 1u) << "dedup failed: identical "
                                           "concurrent requests "
                                           "simulated more than once";
    EXPECT_EQ(counters.dedup_hits, kClients - 1);
    EXPECT_EQ(counters.served, kClients);
    for (unsigned i = 0; i < kClients; ++i) {
        ASSERT_NE(responses[i], nullptr) << failures[i].to_string();
        // Byte-identity by construction: the same response object.
        EXPECT_EQ(responses[i], responses[0]);
        EXPECT_EQ(*responses[i], *responses[0]);
        EXPECT_EQ(response_status(*responses[i]), "ok");
    }
}

TEST(Scheduler, RejectsPastBoundRequestsOverloadedWithinADeadline)
{
    Gate gate;
    SchedulerConfig config;
    config.workers = 1;
    config.max_queue = 1;
    config.before_job = gate.hook();
    Scheduler scheduler(config);

    // A: occupies the one worker (blocked at the gate).
    std::thread a([&] {
        auto response = scheduler.submit(small_request());
        EXPECT_TRUE(response.has_value());
    });
    ASSERT_TRUE(eventually([&] { return gate.entered.load() == 1; }));

    // B: fills the one queue slot.  Payload=true keeps its fingerprint
    // distinct from A's so it queues instead of joining A.
    std::thread b([&] {
        auto response = scheduler.submit(small_request(true));
        EXPECT_TRUE(response.has_value());
    });
    ASSERT_TRUE(eventually(
        [&] { return scheduler.counters().queue_depth == 1; }));

    // C: past the bound — must be rejected typed and immediately, not
    // block behind the stuck worker.
    core::ExperimentRequest distinct = small_request();
    distinct.config.nl_lead_time = 99; // distinct fingerprint
    const auto begun = std::chrono::steady_clock::now();
    auto rejected = scheduler.submit(std::move(distinct));
    const auto waited =
        std::chrono::steady_clock::now() - begun;
    ASSERT_FALSE(rejected.has_value());
    EXPECT_EQ(rejected.status().kind(), util::ErrorKind::Overloaded);
    EXPECT_LT(waited, std::chrono::seconds(5));
    EXPECT_EQ(scheduler.counters().rejected_overloaded, 1u);

    gate.release();
    a.join();
    b.join();
}

TEST(Scheduler, DrainFailsQueuedJobsAndFinishesInFlightOnes)
{
    Gate gate;
    SchedulerConfig config;
    config.workers = 1;
    config.max_queue = 4;
    config.before_job = gate.hook();
    Scheduler scheduler(config);

    std::shared_ptr<const std::string> running_response;
    std::thread a([&] {
        auto response = scheduler.submit(small_request());
        ASSERT_TRUE(response.has_value());
        running_response = response.take();
    });
    ASSERT_TRUE(eventually([&] { return gate.entered.load() == 1; }));

    std::shared_ptr<const std::string> queued_response;
    std::thread b([&] {
        auto response = scheduler.submit(small_request(true));
        ASSERT_TRUE(response.has_value());
        queued_response = response.take();
    });
    ASSERT_TRUE(eventually(
        [&] { return scheduler.counters().queue_depth == 1; }));

    // A dedup joiner on the queued job: its waiter must be accounted
    // as rejected, not served, when the drain fails the job.
    std::shared_ptr<const std::string> joined_response;
    std::thread b2([&] {
        auto response = scheduler.submit(small_request(true));
        ASSERT_TRUE(response.has_value());
        joined_response = response.take();
    });
    ASSERT_TRUE(eventually(
        [&] { return scheduler.counters().dedup_hits == 1; }));

    std::thread drainer([&] { scheduler.drain(); });
    // The queued job fails without waiting for the running one.
    b.join();
    b2.join();
    ASSERT_NE(queued_response, nullptr);
    EXPECT_EQ(response_status(*queued_response), "error");
    EXPECT_EQ(response_kind(*queued_response), "shutting_down");
    ASSERT_NE(joined_response, nullptr);
    EXPECT_EQ(joined_response, queued_response);

    gate.release(); // let the in-flight job finish
    a.join();
    drainer.join();
    ASSERT_NE(running_response, nullptr);
    EXPECT_EQ(response_status(*running_response), "ok")
        << "an admitted-and-started request must complete on drain";

    // After the drain no new work is admitted.
    auto late = scheduler.submit(small_request());
    ASSERT_FALSE(late.has_value());
    EXPECT_EQ(late.status().kind(), util::ErrorKind::ShuttingDown);

    // Every waiter landed in exactly one /stats bucket: the running
    // job's waiter was served; the drained job's two waiters and the
    // late submit were rejected — never both served and rejected.
    const SchedulerCounters counters = scheduler.counters();
    EXPECT_EQ(counters.served, 1u);
    EXPECT_EQ(counters.rejected_shutting_down, 3u);
}

// --------------------------------------------------------- response LRU

TEST(ResponseLru, HitReturnsTheExactRenderedObject)
{
    SchedulerConfig config;
    config.workers = 1;
    Scheduler scheduler(config);

    auto first = scheduler.submit(small_request());
    ASSERT_TRUE(first.has_value()) << first.status().to_string();
    auto second = scheduler.submit(small_request());
    ASSERT_TRUE(second.has_value()) << second.status().to_string();
    // Not merely equal bytes: the very same rendered object the cold
    // run produced.
    EXPECT_EQ(first.value(), second.value());
    EXPECT_EQ(*first.value(), *second.value());

    const SchedulerCounters counters = scheduler.counters();
    EXPECT_EQ(counters.simulations, 1u)
        << "the warm twin should never have reached a worker";
    EXPECT_EQ(counters.response_lru_hits, 1u);
    EXPECT_EQ(counters.served, 2u);
    EXPECT_EQ(counters.response_lru_entries, 1u);
    EXPECT_GT(counters.response_lru_bytes, 0u);
}

TEST(ResponseLru, EvictsAtTheByteBudgetInRecencyOrder)
{
    // Probe pass: learn what one payload-bearing response costs.
    std::uint64_t probe_bytes = 0;
    {
        SchedulerConfig config;
        config.workers = 1;
        Scheduler probe(config);
        ASSERT_TRUE(probe.submit(small_request(true)).has_value());
        probe_bytes = probe.counters().response_lru_bytes;
        ASSERT_GT(probe_bytes, 0u);
    }

    // Budget sized for exactly the payload-bearing response: the
    // (smaller) plain response then fits only by evicting it.
    SchedulerConfig config;
    config.workers = 1;
    config.response_cache_bytes =
        static_cast<std::size_t>(probe_bytes);
    Scheduler scheduler(config);

    ASSERT_TRUE(scheduler.submit(small_request(true)).has_value());
    EXPECT_EQ(scheduler.counters().response_lru_entries, 1u);
    ASSERT_TRUE(scheduler.submit(small_request(false)).has_value());
    {
        const SchedulerCounters counters = scheduler.counters();
        EXPECT_EQ(counters.response_lru_evictions, 1u)
            << "inserting past the byte budget must evict the tail";
        EXPECT_EQ(counters.response_lru_entries, 1u);
        EXPECT_LE(counters.response_lru_bytes,
                  config.response_cache_bytes);
    }

    // The survivor hits; the evicted shape re-simulates.
    ASSERT_TRUE(scheduler.submit(small_request(false)).has_value());
    EXPECT_EQ(scheduler.counters().response_lru_hits, 1u);
    ASSERT_TRUE(scheduler.submit(small_request(true)).has_value());
    const SchedulerCounters counters = scheduler.counters();
    EXPECT_EQ(counters.simulations, 3u)
        << "an evicted response must not be served from the LRU";
    EXPECT_EQ(counters.response_lru_hits, 1u);
    EXPECT_EQ(counters.response_lru_evictions, 2u);
}

TEST(ResponseLru, ZeroBudgetDisablesCachingEntirely)
{
    SchedulerConfig config;
    config.workers = 1;
    config.response_cache_bytes = 0;
    Scheduler scheduler(config);

    ASSERT_TRUE(scheduler.submit(small_request()).has_value());
    ASSERT_TRUE(scheduler.submit(small_request()).has_value());
    const SchedulerCounters counters = scheduler.counters();
    EXPECT_EQ(counters.simulations, 2u);
    EXPECT_EQ(counters.response_lru_hits, 0u);
    EXPECT_EQ(counters.response_lru_entries, 0u);
    EXPECT_EQ(counters.response_lru_bytes, 0u);
}

TEST(ResponseLru, EngineKeyedFingerprintsNeverAlias)
{
    // The same benchmark pinned to opposite engines renders
    // byte-identical *results*, but the responses embed their own
    // fingerprints — engine-pinned requests must each simulate cold,
    // never serve one another's LRU entry.
    auto pinned = [](const char *engine) {
        auto parsed = util::json_parse(
            std::string(R"({"type":"run","benchmarks":["stream"],)") +
            R"("instructions":100000,"engine":")" + engine + "\"}");
        EXPECT_TRUE(parsed.has_value());
        auto decoded = core::decode_experiment_request(parsed.value());
        EXPECT_TRUE(decoded.has_value())
            << decoded.status().to_string();
        return decoded.take();
    };

    SchedulerConfig config;
    config.workers = 1;
    Scheduler scheduler(config);
    ASSERT_TRUE(scheduler.submit(pinned("analytic")).has_value());
    ASSERT_TRUE(scheduler.submit(pinned("sim")).has_value());
    const SchedulerCounters counters = scheduler.counters();
    EXPECT_EQ(counters.simulations, 2u)
        << "a sim-pinned request was answered from the analytic "
           "request's response cache entry";
    EXPECT_EQ(counters.response_lru_hits, 0u);
    EXPECT_EQ(counters.response_lru_entries, 2u);
}

// ------------------------------------------------------ deadline shedding

TEST(Scheduler, ShedsUnmeetableDeadlinesWithoutQueueing)
{
    Gate gate;
    SchedulerConfig config;
    config.workers = 1;
    config.max_queue = 4;
    // Seed the cost model so shedding is deterministic: every job is
    // assumed to take ten seconds.
    config.assumed_job_ms = 10'000.0;
    config.before_job = gate.hook();
    Scheduler scheduler(config);

    // A: occupies the one worker, held at the gate.
    std::thread a([&] {
        EXPECT_TRUE(scheduler.submit(small_request()).has_value());
    });
    ASSERT_TRUE(eventually([&] { return gate.entered.load() == 1; }));

    // B: distinct shape, 1 ms deadline — with a 10 s cost model the
    // estimate cannot fit, so it is shed typed and immediately.
    core::ExperimentRequest doomed = small_request(true);
    doomed.deadline_ms = 1;
    auto rejected = scheduler.submit(std::move(doomed));
    ASSERT_FALSE(rejected.has_value());
    EXPECT_EQ(rejected.status().kind(), util::ErrorKind::Overloaded);
    EXPECT_EQ(scheduler.counters().rejected_deadline, 1u);

    // C: the same shape with no deadline queues normally — deadline
    // shedding must never reject deadline-free requests.
    std::thread c([&] {
        EXPECT_TRUE(scheduler.submit(small_request(true)).has_value());
    });
    ASSERT_TRUE(eventually(
        [&] { return scheduler.counters().queue_depth == 1; }));

    // D: an identical twin of C carrying a hopeless deadline joins the
    // in-flight group instead of being shed — the deadline is
    // admission metadata, not part of the dedup key.
    std::thread d([&] {
        core::ExperimentRequest twin = small_request(true);
        twin.deadline_ms = 1;
        EXPECT_TRUE(scheduler.submit(std::move(twin)).has_value());
    });
    ASSERT_TRUE(eventually(
        [&] { return scheduler.counters().dedup_hits == 1; }));

    gate.release();
    a.join();
    c.join();
    d.join();

    const SchedulerCounters counters = scheduler.counters();
    EXPECT_EQ(counters.served, 3u);
    EXPECT_EQ(counters.rejected_deadline, 1u);
    EXPECT_EQ(counters.rejected_overloaded, 0u);
}

// ----------------------------------------------------------- full daemon

namespace {

/** A Server on an ephemeral loopback port + a serve() thread. */
class ServeFixture : public ::testing::Test
{
  protected:
    void
    start(ServerConfig config = {})
    {
        config.unix_path.clear();
        config.listen_tcp = true;
        config.tcp_port = 0;
        config.scheduler.workers = 2;
        server = std::make_unique<Server>(std::move(config));
        ASSERT_TRUE(server->start().ok());
        endpoint.tcp_port = server->tcp_port();
        thread = std::thread([this] {
            util::Status served = server->serve();
            EXPECT_TRUE(served.ok()) << served.to_string();
        });
    }

    void
    TearDown() override
    {
        if (server)
            server->request_drain();
        if (thread.joinable())
            thread.join();
    }

    std::unique_ptr<Server> server;
    std::thread thread;
    Endpoint endpoint; // tcp 127.0.0.1:<ephemeral>
};

} // namespace

TEST_F(ServeFixture, RoundTripIsByteIdenticalToTheOfflineSuite)
{
    start();

    RunRequest request;
    request.benchmarks = {"gzip", "mesa"};
    request.instructions = 20'000;
    request.want_payload = true;
    auto response =
        call_endpoint(endpoint, build_run_request(request));
    ASSERT_TRUE(response.has_value()) << response.status().to_string();
    const util::JsonValue &body = response.value();
    ASSERT_TRUE(body.find("benchmarks")->is_array());
    const auto &runs = body.find("benchmarks")->array();
    ASSERT_EQ(runs.size(), 2u);

    // The offline oracle: same knobs through the ordinary suite path.
    core::ExperimentConfig config;
    config.instructions = 20'000;
    config.extra_edges = core::standard_extra_edges();
    const std::vector<core::ExperimentResult> offline =
        core::run_suite({"gzip", "mesa"}, config);

    for (std::size_t i = 0; i < runs.size(); ++i) {
        const std::string oracle =
            core::serialize_result(offline[i]);
        auto payload = hex_decode(
            runs[i].find("payload")->string_value());
        ASSERT_TRUE(payload.has_value());
        EXPECT_EQ(payload.value(), oracle)
            << "daemon result for " << offline[i].workload
            << " is not byte-identical to the offline suite";
        EXPECT_EQ(runs[i].find("result_fnv")->string_value(),
                  util::hex64(
                      util::fnv1a(oracle.data(), oracle.size())));
        // And the payload really deserializes.
        EXPECT_TRUE(
            core::deserialize_result(payload.value()).has_value());
    }
}

TEST_F(ServeFixture, ColdEngineRequestsDigestIdentically)
{
    start();

    // Two *cold* requests for the same analyzable benchmark, pinned to
    // opposite engines.  Their fingerprints differ (neither dedups nor
    // warm-loads off the other), both simulate fresh, and their result
    // digests must still match — the fast path is exact, not an
    // approximation the cache happens to hide.
    auto run_pinned = [this](const std::string &engine) {
        RunRequest request;
        request.benchmarks = {"stream"};
        request.instructions = 100'000;
        request.engine = engine;
        auto response =
            call_endpoint(endpoint, build_run_request(request));
        EXPECT_TRUE(response.has_value())
            << response.status().to_string();
        return response.take();
    };
    const util::JsonValue analytic = run_pinned("analytic");
    const util::JsonValue sim = run_pinned("sim");

    const util::JsonValue &arun = analytic.find("benchmarks")->array()[0];
    const util::JsonValue &srun = sim.find("benchmarks")->array()[0];
    EXPECT_FALSE(arun.find("from_cache")->bool_value());
    EXPECT_FALSE(srun.find("from_cache")->bool_value());
    EXPECT_EQ(arun.find("engine")->string_value(), "analytic");
    EXPECT_EQ(srun.find("engine")->string_value(), "sim");
    EXPECT_EQ(arun.find("result_fnv")->string_value(),
              srun.find("result_fnv")->string_value())
        << "cold analytic digest differs from cold sim digest";

    auto stats = call_endpoint(endpoint, build_stats_request());
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats.value().find("analytic_runs")->u64_value(), 1u);
    EXPECT_EQ(stats.value().find("sim_runs")->u64_value(), 1u);
    EXPECT_EQ(stats.value().find("cache_hits")->u64_value(), 0u);
}

TEST_F(ServeFixture, SurvivesGarbageFramesAndVanishingPeers)
{
    start();

    // Garbage JSON inside an intact frame: typed error, session lives.
    {
        auto socket = connect_endpoint(endpoint);
        ASSERT_TRUE(socket.has_value());
        ASSERT_TRUE(
            send_frame(socket.value(), "this is not json").ok());
        auto error = recv_frame(socket.value());
        ASSERT_TRUE(error.has_value());
        EXPECT_EQ(response_status(error.value()), "error");
        EXPECT_EQ(response_kind(error.value()), "corrupt_data");
        // Same connection still speaks the protocol.
        auto pong = call(socket.value(), build_ping_request());
        ASSERT_TRUE(pong.has_value()) << pong.status().to_string();
    }

    // Unknown type and non-object requests: typed errors.
    {
        auto socket = connect_endpoint(endpoint);
        ASSERT_TRUE(socket.has_value());
        auto bad_type = call(socket.value(),
                             R"({"type":"frobnicate"})");
        ASSERT_FALSE(bad_type.has_value());
        EXPECT_EQ(bad_type.status().kind(),
                  util::ErrorKind::InvalidArgument);
        auto not_object = call(socket.value(), "[1,2,3]");
        ASSERT_FALSE(not_object.has_value());
        EXPECT_EQ(not_object.status().kind(),
                  util::ErrorKind::InvalidArgument);
    }

    // A peer that dies mid-header.
    {
        auto socket = connect_endpoint(endpoint);
        ASSERT_TRUE(socket.has_value());
        const unsigned char half[2] = {0x40, 0x00};
        ASSERT_TRUE(
            net::send_all(socket.value(), half, sizeof(half)).ok());
    } // closed here

    // A peer that lies in its length prefix, then dies.
    {
        auto socket = connect_endpoint(endpoint);
        ASSERT_TRUE(socket.has_value());
        const unsigned char huge[4] = {0xff, 0xff, 0xff, 0x7f};
        ASSERT_TRUE(
            net::send_all(socket.value(), huge, sizeof(huge)).ok());
    }

    // Through all of that the daemon still serves, and counted the
    // trouble.
    ASSERT_TRUE(eventually([&] {
        return server->stats().protocol_errors >= 3;
    }));
    auto stats = call_endpoint(endpoint, build_stats_request());
    ASSERT_TRUE(stats.has_value()) << stats.status().to_string();
    EXPECT_GE(stats.value().find("protocol_errors")->u64_value(), 3u);
}

TEST_F(ServeFixture, LoadRunDedupesAndReportsIdenticalResponses)
{
    start();

    RunRequest request;
    request.benchmarks = {"gzip"};
    request.instructions = 20'000;
    const LoadReport report = run_load(endpoint, request,
                                       /*total=*/8, /*concurrency=*/8);
    EXPECT_EQ(report.sent, 8u);
    EXPECT_EQ(report.ok, 8u);
    EXPECT_EQ(report.overloaded, 0u);
    EXPECT_EQ(report.distinct_fingerprints, 1u);
    EXPECT_EQ(report.distinct_responses, 1u)
        << "identical requests produced non-identical response bytes";

    const StatsSnapshot stats = server->stats();
    EXPECT_EQ(stats.requests_served, 8u);
    // At least the concurrent overlap deduped or a straggler hit the
    // response LRU; either way byte-identity holds, per
    // distinct_responses above.
    EXPECT_GE(stats.dedup_hits + stats.response_lru_hits +
                  stats.cache_hits,
              1u);
}

TEST_F(ServeFixture, ReapsFinishedSessionsUnderSustainedArrival)
{
    ServerConfig config;
    config.max_sessions = 4;
    start(config);

    // 8x the session cap, back-to-back: each connection completes one
    // ping and closes before the next opens, so at any moment at most
    // a few sessions linger unfinished.  The accept loop must reap
    // finished sessions on every iteration — if it only reaps when the
    // poll times out, this sustained arrival keeps the poll busy, dead
    // sessions pile up to the cap, and almost every later connection
    // is shed Overloaded despite zero live sessions.
    constexpr unsigned kConnections = 32;
    unsigned ok = 0;
    unsigned overloaded = 0;
    for (unsigned i = 0; i < kConnections; ++i) {
        auto pong = call_endpoint(endpoint, build_ping_request());
        if (pong.has_value()) {
            ++ok;
        } else {
            ASSERT_EQ(pong.status().kind(),
                      util::ErrorKind::Overloaded)
                << pong.status().to_string();
            ++overloaded;
        }
    }
    // Buggy reaping rejects ~(kConnections - max_sessions) of these;
    // a couple of transient rejections from scheduling lag are fine.
    EXPECT_GE(ok, kConnections - 2u);
    EXPECT_LE(overloaded, 2u);
    EXPECT_GE(server->stats().sessions_accepted, kConnections);
}

TEST_F(ServeFixture, StatsReportServedAndLatency)
{
    start();

    auto pong = call_endpoint(endpoint, build_ping_request());
    ASSERT_TRUE(pong.has_value());

    RunRequest request;
    request.benchmarks = {"gzip"};
    request.instructions = 20'000;
    auto run = call_endpoint(endpoint, build_run_request(request));
    ASSERT_TRUE(run.has_value()) << run.status().to_string();

    auto response = call_endpoint(endpoint, build_stats_request());
    ASSERT_TRUE(response.has_value());
    const util::JsonValue &stats = response.value();
    EXPECT_EQ(stats.find("requests_served")->u64_value(), 1u);
    EXPECT_GE(stats.find("sessions_accepted")->u64_value(), 3u);
    EXPECT_GT(stats.find("latency_p50_ms")->number_value(), 0.0);
    EXPECT_GE(stats.find("latency_p99_ms")->number_value(),
              stats.find("latency_p50_ms")->number_value());
    EXPECT_GT(stats.find("uptime_seconds")->number_value(), 0.0);
}

TEST_F(ServeFixture, StatsCountResponseLruHitsExactly)
{
    start();

    RunRequest request;
    request.benchmarks = {"gzip"};
    request.instructions = 20'000;

    std::string cold_raw;
    auto cold = call_endpoint(endpoint, build_run_request(request),
                              kDefaultMaxFrameBytes, &cold_raw);
    ASSERT_TRUE(cold.has_value()) << cold.status().to_string();

    // Five sequential reruns: each must be a response-LRU hit carrying
    // the cold render's exact bytes.
    constexpr unsigned kReruns = 5;
    for (unsigned i = 0; i < kReruns; ++i) {
        std::string warm_raw;
        auto warm = call_endpoint(endpoint, build_run_request(request),
                                  kDefaultMaxFrameBytes, &warm_raw);
        ASSERT_TRUE(warm.has_value()) << warm.status().to_string();
        EXPECT_EQ(warm_raw, cold_raw)
            << "LRU-hit rerun " << i
            << " is not byte-identical to the cold render";
    }

    auto response = call_endpoint(endpoint, build_stats_request());
    ASSERT_TRUE(response.has_value());
    const util::JsonValue &stats = response.value();
    // Exact accounting, not just >=: one cold simulation, five hits,
    // one cached entry.
    EXPECT_EQ(stats.find("requests_served")->u64_value(),
              1u + kReruns);
    EXPECT_EQ(stats.find("response_lru_hits")->u64_value(), kReruns);
    EXPECT_EQ(stats.find("response_lru_entries")->u64_value(), 1u);
    EXPECT_GT(stats.find("response_lru_bytes")->u64_value(), 0u);
    EXPECT_EQ(stats.find("response_lru_evictions")->u64_value(), 0u);
}

TEST_F(ServeFixture, ShedsDeadlinesEndToEnd)
{
    // Seed the cost model at ten seconds per job: any request carrying
    // a millisecond-scale deadline is unmeetable from the first
    // admission, deterministically.
    ServerConfig config;
    config.scheduler.assumed_job_ms = 10'000.0;
    start(config);

    // Deadline-free requests are never shed, whatever the model says.
    RunRequest request;
    request.benchmarks = {"gzip"};
    request.instructions = 20'000;
    auto ok = call_endpoint(endpoint, build_run_request(request));
    ASSERT_TRUE(ok.has_value()) << ok.status().to_string();

    // A distinct (cold) shape with a 1 ms deadline is shed typed.
    RunRequest doomed = request;
    doomed.want_payload = true;
    doomed.deadline_ms = 1;
    auto shed = call_endpoint(endpoint, build_run_request(doomed));
    ASSERT_FALSE(shed.has_value());
    EXPECT_EQ(shed.status().kind(), util::ErrorKind::Overloaded);
    EXPECT_EQ(server->stats().rejected_deadline, 1u);
    EXPECT_EQ(server->stats().rejected_overloaded, 0u)
        << "deadline sheds must be counted apart from queue-bound "
           "rejections";

    // The same shape with a generous deadline is admitted and served.
    doomed.deadline_ms = 3'600'000;
    auto served = call_endpoint(endpoint, build_run_request(doomed));
    ASSERT_TRUE(served.has_value()) << served.status().to_string();
    EXPECT_EQ(server->stats().rejected_deadline, 1u);
}

TEST_F(ServeFixture, StatsSurfaceStaleLockBreaksAsLocksBroken)
{
    // Crash hygiene end to end: a shard SIGKILLed while holding a
    // cache entry lock leaves a stale `.lock`; the next daemon to miss
    // that entry breaks it, and the break must surface in /stats as
    // `locks_broken` (and in the run response's cache_health).
    namespace fs = std::filesystem;
    const std::string dir = ::testing::TempDir() + "lb_serve_stale";
    fs::remove_all(dir);
    fs::create_directories(dir);

    // The daemon computes the entry key from the decoder-normalized
    // config — reproduce it the same way.
    const core::ExperimentRequest decoded = small_request();
    const core::ArtifactCache probe(dir);
    const std::string lock =
        probe.entry_path(core::fingerprint_entry(
            core::fingerprint_config(decoded.config), "gzip")) +
        ".lock";
    { std::ofstream out(lock); }
    // Age it far past the 120 s stale threshold.
    struct timespec stale[2];
    ASSERT_EQ(::clock_gettime(CLOCK_REALTIME, &stale[0]), 0);
    stale[0].tv_sec -= 600;
    stale[1] = stale[0];
    ASSERT_EQ(::utimensat(AT_FDCWD, lock.c_str(), stale, 0), 0);

    ServerConfig config;
    config.scheduler.cache_dir = dir;
    start(config);

    RunRequest request;
    request.benchmarks = {"gzip"};
    request.instructions = 20'000;
    auto response = call_endpoint(endpoint, build_run_request(request));
    ASSERT_TRUE(response.has_value()) << response.status().to_string();
    const util::JsonValue *health = response.value().find("cache_health");
    ASSERT_NE(health, nullptr);
    EXPECT_EQ(health->find("lock_breaks")->u64_value(), 1u);

    auto stats = call_endpoint(endpoint, build_stats_request());
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats.value().find("locks_broken")->u64_value(), 1u);
    EXPECT_EQ(server->stats().locks_broken, 1u);
    EXPECT_FALSE(fs::exists(lock));
    fs::remove_all(dir);
}

// ------------------------------------------------------------ fleet mode

namespace {

/** Two Servers on ephemeral loopback ports, each with a serve thread —
 *  the in-process stand-in for a two-shard fleet (no fork: this file
 *  runs under TSan). */
class FleetFixture : public ::testing::Test
{
  protected:
    void
    start_shards(ServerConfig config = {})
    {
        for (int i = 0; i < 2; ++i) {
            config.unix_path.clear();
            config.listen_tcp = true;
            config.tcp_port = 0;
            config.scheduler.workers = 2;
            config.shard_index = i;
            shards[i] = std::make_unique<Server>(config);
            ASSERT_TRUE(shards[i]->start().ok());
            Endpoint endpoint;
            endpoint.tcp_port = shards[i]->tcp_port();
            fleet.push_back(endpoint);
            threads[i] = std::thread([server = shards[i].get()] {
                util::Status served = server->serve();
                EXPECT_TRUE(served.ok()) << served.to_string();
            });
        }
    }

    void
    stop_shard(unsigned index)
    {
        shards[index]->request_drain();
        threads[index].join();
    }

    void
    TearDown() override
    {
        for (int i = 0; i < 2; ++i) {
            if (shards[i] && threads[i].joinable()) {
                shards[i]->request_drain();
                threads[i].join();
            }
        }
    }

    std::unique_ptr<Server> shards[2];
    std::thread threads[2];
    std::vector<Endpoint> fleet;
};

} // namespace

TEST_F(FleetFixture, CallFleetRoutesToTheFingerprintHomeShard)
{
    start_shards();

    RunRequest request;
    request.benchmarks = {"gzip"};
    request.instructions = 20'000;
    auto fingerprint = fingerprint_run_request(request);
    ASSERT_TRUE(fingerprint.has_value())
        << fingerprint.status().to_string();
    const unsigned home = core::route_shard(fingerprint.value(), 2);

    std::uint64_t failovers = 0;
    auto response = call_fleet(fleet, request, FailoverPolicy{},
                               kDefaultMaxFrameBytes, nullptr,
                               &failovers);
    ASSERT_TRUE(response.has_value()) << response.status().to_string();
    EXPECT_EQ(failovers, 0u);
    // Exactly the home shard served it; the other stayed idle.
    EXPECT_EQ(shards[home]->stats().requests_served, 1u);
    EXPECT_EQ(shards[1 - home]->stats().requests_served, 0u);
    // And the client-side fingerprint is the server's dedup key.
    EXPECT_EQ(response.value().find("request_fingerprint")->string_value(),
              util::hex64(fingerprint.value()));
}

TEST_F(FleetFixture, CallFleetFailsOverWhenTheHomeShardIsDown)
{
    start_shards();

    RunRequest request;
    request.benchmarks = {"gzip"};
    request.instructions = 20'000;
    auto fingerprint = fingerprint_run_request(request);
    ASSERT_TRUE(fingerprint.has_value());
    const unsigned home = core::route_shard(fingerprint.value(), 2);

    // The home shard dies (drained and gone: connects are refused).
    stop_shard(home);

    std::uint64_t failovers = 0;
    std::string raw;
    auto response = call_fleet(fleet, request, FailoverPolicy{},
                               kDefaultMaxFrameBytes, &raw, &failovers);
    ASSERT_TRUE(response.has_value())
        << "failover must reach the surviving shard: "
        << response.status().to_string();
    EXPECT_GE(failovers, 1u);
    EXPECT_EQ(shards[1 - home]->stats().requests_served, 1u);

    // Non-failover-worthy verdicts still return immediately: an
    // invalid request is the request's fault, not the shard's.
    RunRequest broken = request;
    broken.instructions = 10; // below the decoder floor
    auto verdict = call_fleet(fleet, broken);
    ASSERT_FALSE(verdict.has_value());
    EXPECT_EQ(verdict.status().kind(),
              util::ErrorKind::InvalidArgument);
}

TEST_F(FleetFixture, FleetLoadReportsFullOkUnderSingleShardLoss)
{
    start_shards();

    RunRequest request;
    request.benchmarks = {"gzip"};
    request.instructions = 20'000;
    auto fingerprint = fingerprint_run_request(request);
    ASSERT_TRUE(fingerprint.has_value());
    const unsigned home = core::route_shard(fingerprint.value(), 2);

    // Warm both shards first so the failover target answers from its
    // own cache/LRU quickly.
    for (const Endpoint &endpoint : fleet) {
        auto warm = call_endpoint(endpoint, build_run_request(request));
        ASSERT_TRUE(warm.has_value()) << warm.status().to_string();
    }

    stop_shard(home);

    LoadOptions options;
    options.total = 16;
    options.concurrency = 4;
    options.fleet = fleet;
    const LoadReport report = run_load(fleet[home], request, options);
    EXPECT_EQ(report.sent, 16u);
    EXPECT_EQ(report.ok, 16u)
        << "every request must fail over to the live shard";
    EXPECT_GE(report.failovers, 16u);
    EXPECT_EQ(report.distinct_responses, 1u)
        << "failover responses are not byte-identical";

    // Pipelined persistent fleet mode survives the same loss.
    LoadOptions pipelined = options;
    pipelined.persistent = true;
    pipelined.pipeline = 4;
    const LoadReport report2 = run_load(fleet[home], request, pipelined);
    EXPECT_EQ(report2.sent, 16u);
    EXPECT_EQ(report2.ok, 16u);
    EXPECT_GE(report2.failovers, 1u);
}

TEST(ShardEndpoints, DeriveUnixAndTcpNamesByConvention)
{
    Endpoint base;
    base.unix_path = "/tmp/leak.sock";
    EXPECT_EQ(shard_endpoint(base, 0).unix_path, "/tmp/leak.sock.0");
    EXPECT_EQ(shard_endpoint(base, 3).unix_path, "/tmp/leak.sock.3");

    Endpoint tcp;
    tcp.tcp_port = 9000;
    EXPECT_EQ(shard_endpoint(tcp, 0).tcp_port, 9001);
    EXPECT_EQ(shard_endpoint(tcp, 3).tcp_port, 9004);

    const std::vector<Endpoint> fleet = fleet_endpoints(tcp, 4);
    ASSERT_EQ(fleet.size(), 4u);
    EXPECT_EQ(fleet[3].tcp_port, 9004);

    // Routing is stable and in range for any shard count.
    for (unsigned n : {1u, 2u, 3u, 8u}) {
        for (std::uint64_t fp : {0ull, 1ull, 0xdeadbeefull}) {
            const unsigned shard = core::route_shard(fp, n);
            EXPECT_LT(shard, n);
            EXPECT_EQ(shard, core::route_shard(fp, n));
        }
    }
}

TEST_F(ServeFixture, PipelinedRequestsAnswerInOrderOnOneConnection)
{
    start();

    auto socket = connect_endpoint(endpoint);
    ASSERT_TRUE(socket.has_value()) << socket.status().to_string();

    // Four frames back-to-back, no reads in between: ping, stats, an
    // actual run (orders of magnitude slower than the pings), ping.
    RunRequest request;
    request.benchmarks = {"gzip"};
    request.instructions = 20'000;
    ASSERT_TRUE(send_frame(socket.value(), build_ping_request()).ok());
    ASSERT_TRUE(send_frame(socket.value(), build_stats_request()).ok());
    ASSERT_TRUE(
        send_frame(socket.value(), build_run_request(request)).ok());
    ASSERT_TRUE(send_frame(socket.value(), build_ping_request()).ok());

    // Replies come back in request order: the trailing ping's reply
    // must wait behind the run even though it was ready first.
    const char *expected[] = {"pong", "stats", "run", "pong"};
    for (const char *type : expected) {
        auto frame = recv_frame(socket.value());
        ASSERT_TRUE(frame.has_value()) << frame.status().to_string();
        auto parsed = util::json_parse(frame.value());
        ASSERT_TRUE(parsed.has_value()) << frame.value();
        EXPECT_EQ(parsed.value().find("status")->string_value(), "ok");
        EXPECT_EQ(parsed.value().find("type")->string_value(), type)
            << "pipelined replies arrived out of request order";
    }
}
