# Empty compiler generated dependencies file for test_interval_histogram.
# This may be replaced when dependencies are built.
