# Empty compiler generated dependencies file for table1_inflection.
# This may be replaced when dependencies are built.
