/**
 * @file
 * Implementation of the in-order timing core.
 */

#include "cpu/inorder_core.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace leakbound::cpu {

InOrderCore::InOrderCore(const CoreConfig &config, sim::Hierarchy *hierarchy,
                         workload::Workload *source,
                         AccessListener *listener)
    : config_(config), hierarchy_(hierarchy), source_(source),
      listener_(listener)
{
    LEAKBOUND_ASSERT(hierarchy_ != nullptr, "core needs a hierarchy");
    LEAKBOUND_ASSERT(source_ != nullptr, "core needs a workload");
    if (config_.fetch_width == 0)
        util::fatal("fetch width must be at least 1");
}

bool
InOrderCore::fetch_op(trace::MicroOp &op)
{
    if (have_pending_) {
        op = pending_;
        have_pending_ = false;
        return true;
    }
    return source_->next(op);
}

bool
InOrderCore::peek_op(trace::MicroOp &op)
{
    if (!have_pending_) {
        if (!source_->next(pending_))
            return false;
        have_pending_ = true;
    }
    op = pending_;
    return true;
}

CoreRunStats
InOrderCore::run(std::uint64_t max_instructions)
{
    return run(max_instructions, GroupHook());
}

CoreRunStats
InOrderCore::run(std::uint64_t max_instructions, const GroupHook &hook)
{
    CoreRunStats stats;
    const Cycles l1i_hit = hierarchy_->config().l1i.hit_latency;
    const Cycles l1d_hit = hierarchy_->config().l1d.hit_latency;
    const std::uint32_t line_shift = hierarchy_->config().l1i.line_shift();

    while (stats.instructions < max_instructions) {
        trace::MicroOp op;
        if (!fetch_op(op))
            break; // finite workload exhausted

        // Form the fetch group: sequential PCs within one I-line, up
        // to the fetch width.  A taken branch (PC discontinuity) ends
        // the group, as does a line boundary.
        const Pc group_pc = op.pc;
        const Addr group_line = group_pc >> line_shift;

        Cycles worst_data_penalty = 0;
        std::uint32_t group_size = 0;
        Pc expected_pc = group_pc;
        for (;;) {
            // `op` is the accepted instruction at `expected_pc`.
            ++group_size;
            ++stats.instructions;
            if (op.kind != trace::InstrKind::Op) {
                const bool is_store = op.kind == trace::InstrKind::Store;
                const sim::HierarchyResult dres =
                    hierarchy_->access_data(op.addr);
                if (is_store)
                    ++stats.stores;
                else
                    ++stats.loads;
                if (listener_) {
                    listener_->on_data_access(cycle_, op.pc, op.addr,
                                              is_store, dres);
                }
                if (dres.latency > l1d_hit) {
                    worst_data_penalty = std::max(worst_data_penalty,
                                                  dres.latency - l1d_hit);
                }
            }

            if (group_size >= config_.fetch_width ||
                stats.instructions >= max_instructions) {
                break;
            }
            expected_pc += config_.instr_bytes;
            trace::MicroOp next_op;
            if (!peek_op(next_op))
                break;
            if (next_op.pc != expected_pc ||
                next_op.pc >> line_shift != group_line) {
                break;
            }
            fetch_op(op);
        }

        // One instruction-cache access per fetch group.
        const sim::HierarchyResult ires =
            hierarchy_->access_instr(group_pc);
        if (listener_)
            listener_->on_instr_access(cycle_, group_pc, ires);
        const Cycles instr_penalty =
            ires.latency > l1i_hit ? ires.latency - l1i_hit : 0;

        // Misses within the group overlap with each other (take the
        // max) and partially with downstream work (the discount);
        // see CoreConfig::miss_overlap_percent.
        const Cycles worst = std::max(instr_penalty, worst_data_penalty);
        const Cycles stall =
            (worst * config_.miss_overlap_percent + 50) / 100;

        ++stats.fetch_groups;
        if (worst == instr_penalty)
            stats.instr_stall_cycles += stall;
        else
            stats.data_stall_cycles += stall;

        cycle_ += 1 + stall;

        if (hook) {
            stats.cycles = cycle_;
            if (!hook(stats))
                break;
        }
    }

    stats.cycles = cycle_;
    return stats;
}

} // namespace leakbound::cpu
