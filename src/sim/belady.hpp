/**
 * @file
 * Offline Belady-MIN (OPT) cache simulation.
 *
 * The paper frames its contribution as "Belady's MIN for leakage":
 * just as MIN bounds every replacement policy's miss rate, the oracle
 * interval policy bounds every leakage policy's savings.  This module
 * provides actual MIN over a recorded block stream, used (a) to
 * validate the online replacement policies in tests — no online
 * policy may miss less — and (b) by the replacement ablation bench to
 * show how far LRU sits from optimal on the synthetic suite.
 *
 * Two-pass algorithm: a backward pass computes each access's next-use
 * distance; the forward pass evicts the resident block with the
 * farthest next use.
 */

#ifndef LEAKBOUND_SIM_BELADY_HPP
#define LEAKBOUND_SIM_BELADY_HPP

#include <vector>

#include "sim/cache.hpp"
#include "util/types.hpp"

namespace leakbound::sim {

/** Result of an offline MIN simulation. */
struct BeladyResult
{
    CacheStats stats;          ///< aggregate counts
    std::vector<bool> hits;    ///< per-access hit flag (input order)
};

/**
 * Simulate Belady-MIN over a stream of byte addresses for the given
 * geometry.  The whole stream must be available up front (that is the
 * point of MIN).
 */
BeladyResult simulate_belady(const CacheConfig &config,
                             const std::vector<Addr> &addresses);

} // namespace leakbound::sim

#endif // LEAKBOUND_SIM_BELADY_HPP
