/**
 * @file
 * Client side of the leakboundd protocol: connect, build request
 * frames, call the daemon, and drive load-generation runs.
 *
 * Every helper returns typed util::Status failures — a dead daemon, a
 * truncated frame or a server-side rejection (Overloaded,
 * ShuttingDown) all surface as the matching ErrorKind, rebuilt from
 * the error frame's "kind" member, so callers branch on taxonomy
 * instead of string-matching messages.
 */

#ifndef LEAKBOUND_SERVE_CLIENT_HPP
#define LEAKBOUND_SERVE_CLIENT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "util/json.hpp"
#include "util/net.hpp"
#include "util/stats.hpp"
#include "util/status.hpp"

namespace leakbound::serve {

/** Where the daemon lives (unix path wins when both are set). */
struct Endpoint
{
    std::string unix_path;
    std::string tcp_host = "127.0.0.1";
    std::uint16_t tcp_port = 0;
};

/** Connect to @p endpoint (one fresh connection per call). */
util::Expected<util::net::Socket> connect_endpoint(const Endpoint &endpoint);

/**
 * Where shard @p shard of a fleet rooted at @p base listens.  The
 * naming convention is shared by the supervisor (which binds these)
 * and the client (which routes to them): unix shard i lives at
 * "<base>.<i>", TCP shard i at base port + 1 + i — the base endpoint
 * itself is the supervisor's control endpoint (ping/health/stats).
 */
Endpoint shard_endpoint(const Endpoint &base, unsigned shard);

/** All shard endpoints of a fleet of @p shards rooted at @p base. */
std::vector<Endpoint> fleet_endpoints(const Endpoint &base,
                                      unsigned shards);

/** The client-facing shape of a "run" request. */
struct RunRequest
{
    std::vector<std::string> benchmarks;
    std::uint64_t instructions = 200'000;
    std::uint64_t nl_lead_time = 0;
    bool collect_l2 = false;
    bool standard_edges = true;
    std::vector<std::uint64_t> extra_edges;
    bool want_payload = false;
    /** Execution engine ("auto" | "analytic" | "sim"); "auto" is the
     *  server default and is omitted from the wire request. */
    std::string engine = "auto";
    /**
     * Completion deadline hint in milliseconds (0 = none).  The server
     * sheds the request with Overloaded when its backlog model says
     * the deadline cannot be met.  Admission metadata only — never
     * part of the dedup fingerprint.
     */
    std::uint64_t deadline_ms = 0;
    /** Cores sharing the L2 (1 = the classic single-core simulator;
     *  omitted from the wire request at the default). */
    std::uint32_t core_count = 1;
    /** Per-core benchmark names (must match core_count when set);
     *  empty runs each requested benchmark on every core. */
    std::vector<std::string> workload_mix;
};

/** Render @p request as the wire JSON. */
std::string build_run_request(const RunRequest &request);

/** Render the one-member utility requests. */
std::string build_stats_request();
std::string build_ping_request();
std::string build_health_request();

/**
 * The dedup key of @p request exactly as the daemon will compute it
 * (build → parse → decode → core::fingerprint_request), so the
 * client's routing key and the server's dedup/LRU key can never
 * drift apart.  InvalidArgument when the request would be rejected
 * server-side anyway.
 */
util::Expected<std::uint64_t>
fingerprint_run_request(const RunRequest &request);

/**
 * One request/response round trip on @p socket: send @p request_json
 * as a frame, receive and parse the response.  A response frame whose
 * "status" is "error" is converted back into its typed Status; the
 * parsed document is returned only for "ok" responses.  When
 * @p raw_frame is non-null it receives the exact response bytes (the
 * load generator hashes these to verify dedup byte-identity).
 */
util::Expected<util::JsonValue>
call(const util::net::Socket &socket, const std::string &request_json,
     std::size_t max_frame = kDefaultMaxFrameBytes,
     std::string *raw_frame = nullptr);

/** connect_endpoint + call on a throwaway connection. */
util::Expected<util::JsonValue>
call_endpoint(const Endpoint &endpoint, const std::string &request_json,
              std::size_t max_frame = kDefaultMaxFrameBytes,
              std::string *raw_frame = nullptr);

/** How call_fleet retries across shards. */
struct FailoverPolicy
{
    /** Attempt ceiling (0 = twice around the fleet). */
    unsigned max_attempts = 0;
    /** Wall-clock retry budget across all attempts. */
    int budget_ms = 5'000;
    /** Capped-exponential backoff between attempts (PR 4 shape). */
    int backoff_initial_ms = 5;
    int backoff_cap_ms = 250;
    /** Mixed with the request fingerprint for deterministic jitter. */
    std::uint64_t jitter_seed = 0xfa110f3eULL;
};

/**
 * Is @p status a shard failure worth rerouting (connection refused,
 * peer vanished, truncated frame, orderly shard drain), as opposed to
 * a verdict about the request itself (InvalidArgument) or about load
 * the whole fleet shares (Overloaded — rerouting a deliberately shed
 * request would just stampede the next shard)?
 */
bool failover_worthy(const util::Status &status);

/**
 * One "run" round trip against a shard fleet: route to the home shard
 * (core::route_shard of the request fingerprint — the shard whose
 * dedup map and response LRU already know this request), then on
 * failover-worthy failures walk the ring with jittered
 * capped-exponential backoff until @p policy's attempt and wall-clock
 * budgets run out.  @p failovers (optional) is incremented once per
 * reroute.  The final failure is returned typed when no shard
 * answers.
 */
util::Expected<util::JsonValue>
call_fleet(const std::vector<Endpoint> &fleet, const RunRequest &request,
           const FailoverPolicy &policy = {},
           std::size_t max_frame = kDefaultMaxFrameBytes,
           std::string *raw_frame = nullptr,
           std::uint64_t *failovers = nullptr);

/** What a load-generation run observed (the client prints this). */
struct LoadReport
{
    std::uint64_t sent = 0;
    std::uint64_t ok = 0;
    std::uint64_t overloaded = 0;
    std::uint64_t shutting_down = 0;
    std::uint64_t other_errors = 0;
    /** Distinct request_fingerprint values seen across ok responses. */
    std::uint64_t distinct_fingerprints = 0;
    /** Distinct full response bodies seen across ok responses (dedup
     *  byte-identity check: identical requests must make this 1). */
    std::uint64_t distinct_responses = 0;
    /** Idle connections actually held open during the run. */
    std::uint64_t idle_connections_held = 0;
    /** Requests rerouted to another shard at least once (fleet mode). */
    std::uint64_t failovers = 0;
    util::LatencyRecorder latency_ms;
    double wall_seconds = 0.0;
};

/** How a load-generation run behaves (run_load). */
struct LoadOptions
{
    /** Total run requests to fire. */
    std::uint64_t total = 1;
    /** Client worker threads (in-flight ceiling in closed-loop mode). */
    unsigned concurrency = 1;
    /**
     * Extra connections opened before the load loop starts and held
     * open — sending nothing — until every request is answered.  This
     * is the 10k-connection story: idle sockets must cost the daemon
     * no threads and no latency.
     */
    unsigned idle_connections = 0;
    /**
     * Open-loop arrival rate in requests/second (0 = closed loop).
     * Request k is released at start + k/rate regardless of how long
     * earlier requests take, so a slow server faces a growing backlog
     * instead of implicit client-side backoff — the arrival pattern
     * deadline shedding exists for.
     */
    double open_loop_rps = 0.0;
    /**
     * Reuse one connection per worker thread for its whole loop
     * (pipelined request/response pairs) instead of a fresh connection
     * per request.
     */
    bool persistent = false;
    /**
     * Requests a persistent worker keeps in flight on its connection
     * before reading responses (1 = strict request/response lockstep).
     * Depth > 1 exercises the daemon's ordered per-connection reply
     * queue and amortizes syscalls on both sides.
     */
    unsigned pipeline = 1;
    std::size_t max_frame = kDefaultMaxFrameBytes;
    /**
     * Shard fleet for fingerprint routing + failover.  Non-empty turns
     * on fleet mode: requests start at the fingerprint's home shard
     * (the `endpoint` argument is ignored) and reroute on
     * failover-worthy failures.  Persistent pipelined workers stay
     * pinned to one shard per connection — that is what keeps dedup
     * and the response LRU hot — and rotate only when it fails.
     */
    std::vector<Endpoint> fleet;
    FailoverPolicy failover;
};

/**
 * Fire options.total identical copies of @p request at @p endpoint
 * from options.concurrency client threads and fold what came back
 * into a LoadReport.  Identical requests are exactly what exercises
 * the daemon's dedup and response-LRU paths; the report's
 * distinct_responses says whether the dedup group really was
 * byte-identical.
 */
LoadReport run_load(const Endpoint &endpoint, const RunRequest &request,
                    const LoadOptions &options);

/** Back-compat shorthand: closed loop, fresh connection per request. */
LoadReport run_load(const Endpoint &endpoint, const RunRequest &request,
                    std::uint64_t total, unsigned concurrency,
                    std::size_t max_frame = kDefaultMaxFrameBytes);

} // namespace leakbound::serve

#endif // LEAKBOUND_SERVE_CLIENT_HPP
