/**
 * @file
 * Tests of the inflection point solver — the paper's Table 1 is
 * reproduced EXACTLY here, plus structural properties (Lemma 1,
 * monotonicity in CD, degenerate parameterizations).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/inflection.hpp"
#include "power/technology.hpp"

using namespace leakbound;
using namespace leakbound::core;

namespace {

struct Table1Row
{
    power::TechNode node;
    Cycles active_drowsy;
    Cycles drowsy_sleep;
};

} // namespace

/** Paper Table 1, verbatim. */
class Table1 : public ::testing::TestWithParam<Table1Row>
{
};

TEST_P(Table1, MatchesPaperExactly)
{
    const Table1Row row = GetParam();
    const InflectionPoints points =
        compute_inflection(power::node_params(row.node));
    EXPECT_EQ(points.active_drowsy, row.active_drowsy);
    EXPECT_EQ(points.drowsy_sleep, row.drowsy_sleep);
}

INSTANTIATE_TEST_SUITE_P(
    PaperValues, Table1,
    ::testing::Values(Table1Row{power::TechNode::Nm70, 6, 1057},
                      Table1Row{power::TechNode::Nm100, 6, 5088},
                      Table1Row{power::TechNode::Nm130, 6, 10328},
                      Table1Row{power::TechNode::Nm180, 6, 103084}),
    [](const ::testing::TestParamInfo<Table1Row> &info) {
        const std::string n = power::node_params(info.param.node).name;
        return "Nm" + n.substr(0, n.size() - 2);
    });

TEST(Inflection, Lemma1HoldsOnAllNodes)
{
    // Appendix Lemma 1: a < b for every technology.
    for (power::TechNode node : power::all_nodes()) {
        const auto points = compute_inflection(power::node_params(node));
        EXPECT_LT(points.active_drowsy, points.drowsy_sleep)
            << power::node_name(node);
    }
}

TEST(Inflection, BShrinksAsTechnologyScalesDown)
{
    // Table 1's headline trend: smaller feature -> smaller b.
    Cycles prev = 0;
    for (power::TechNode node :
         {power::TechNode::Nm70, power::TechNode::Nm100,
          power::TechNode::Nm130, power::TechNode::Nm180}) {
        const auto points = compute_inflection(power::node_params(node));
        EXPECT_GT(points.drowsy_sleep, prev);
        prev = points.drowsy_sleep;
    }
}

TEST(Inflection, BGrowsLinearlyWithRefetchEnergy)
{
    // From Eq. 3: b = (K_S + CD - K_D)/(P_D - P_S); with P_D = 1/3 and
    // P_S = 0, db/dCD = 3.
    power::TechnologyParams tech =
        power::node_params(power::TechNode::Nm70);
    const double b0 =
        compute_inflection(tech).drowsy_sleep_exact;
    tech.refetch_energy += 100.0;
    const double b1 = compute_inflection(tech).drowsy_sleep_exact;
    EXPECT_NEAR(b1 - b0, 300.0, 1e-6);
}

TEST(Inflection, BShrinksWithDeeperDrowsy)
{
    // A leakier drowsy mode (higher P_D) makes sleep attractive
    // earlier.
    power::TechnologyParams tech =
        power::node_params(power::TechNode::Nm70);
    tech.drowsy_power = 0.5;
    const double leaky = compute_inflection(tech).drowsy_sleep_exact;
    tech.drowsy_power = 0.2;
    const double tight = compute_inflection(tech).drowsy_sleep_exact;
    EXPECT_LT(leaky, tight);
}

TEST(Inflection, InfiniteWhenSleepCannotWin)
{
    // P_S == P_D: sleep never recovers its overhead against drowsy.
    power::TechnologyParams tech =
        power::node_params(power::TechNode::Nm70);
    tech.sleep_power = tech.drowsy_power = 0.25;
    const auto points = compute_inflection(tech);
    EXPECT_EQ(points.drowsy_sleep, std::numeric_limits<Cycles>::max());
    EXPECT_TRUE(std::isinf(points.drowsy_sleep_exact));
}

TEST(Inflection, ActiveDrowsyPointIsTransitionSum)
{
    power::TechnologyParams tech =
        power::node_params(power::TechNode::Nm70);
    tech.timings.d1 = 5;
    tech.timings.d3 = 9;
    EXPECT_EQ(compute_inflection(tech).active_drowsy, 14u);
}

TEST(Inflection, RespondsToL2Latency)
{
    // Larger D -> larger s4 -> larger K_S -> larger b (Parikh et al.'s
    // L2-latency effect, reproduced by bench/ablation_l2_latency).
    power::TechnologyParams tech =
        power::node_params(power::TechNode::Nm70);
    const double b_fast = compute_inflection(tech).drowsy_sleep_exact;
    tech.timings = power::ModeTimings::with_l2_latency(30);
    const double b_slow = compute_inflection(tech).drowsy_sleep_exact;
    EXPECT_GT(b_slow, b_fast);
}
