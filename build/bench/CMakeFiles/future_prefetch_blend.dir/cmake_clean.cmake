file(REMOVE_RECURSE
  "CMakeFiles/future_prefetch_blend.dir/future_prefetch_blend.cpp.o"
  "CMakeFiles/future_prefetch_blend.dir/future_prefetch_blend.cpp.o.d"
  "future_prefetch_blend"
  "future_prefetch_blend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_prefetch_blend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
