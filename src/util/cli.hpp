/**
 * @file
 * Tiny command-line flag parser for the bench and example binaries.
 *
 * Flags use the form `--name=value` or `--name value`; bare `--name`
 * sets a boolean.  Unknown flags are fatal (the binaries have small,
 * documented surfaces and silent typos would corrupt experiments).
 */

#ifndef LEAKBOUND_UTIL_CLI_HPP
#define LEAKBOUND_UTIL_CLI_HPP

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace leakbound::util {

/**
 * Declarative flag registry + parser.  Usage:
 * @code
 *   Cli cli("fig8_schemes", "Reproduce Figure 8");
 *   cli.add_flag("instructions", "instructions per benchmark", "8000000");
 *   cli.parse(argc, argv);
 *   auto n = cli.get_u64("instructions");
 * @endcode
 */
class Cli
{
  public:
    /** @param name program name; @param desc one-line description. */
    Cli(std::string name, std::string desc);

    /** Register a flag with a default value. */
    void add_flag(const std::string &name, const std::string &desc,
                  const std::string &default_value);

    /**
     * Parse argv.  Handles --help by printing usage and exiting 0.
     * Unknown flags call fatal().
     */
    void parse(int argc, char **argv);

    /** String value of a flag (default if not given). */
    std::string get(const std::string &name) const;

    /** Unsigned integer value of a flag. */
    std::uint64_t get_u64(const std::string &name) const;

    /** Double value of a flag. */
    double get_double(const std::string &name) const;

    /** Boolean value: "1", "true", "yes", "on" are true. */
    bool get_bool(const std::string &name) const;

    /** Render the --help text. */
    std::string usage() const;

    /**
     * Current (name, value) of every registered flag, sorted by name —
     * the bench JSON reports embed this so a result file records the
     * exact invocation that produced it.
     */
    std::vector<std::pair<std::string, std::string>> snapshot() const;

  private:
    struct Flag
    {
        std::string desc;
        std::string default_value;
        std::string value;
        bool set = false;
    };

    const Flag &lookup(const std::string &name) const;

    std::string name_;
    std::string desc_;
    std::map<std::string, Flag> flags_;
};

} // namespace leakbound::util

#endif // LEAKBOUND_UTIL_CLI_HPP
