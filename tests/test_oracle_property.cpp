/**
 * @file
 * Property test of the Appendix theorem: on randomized interval
 * populations, the oracle assignment (Figure 5 / core::optimal) never
 * dissipates more energy than any stock policy in core/policies —
 * including the oracle policies themselves, whose per-interval
 * decisions it lower-bounds by construction.
 *
 * Populations mix all interval kinds, prefetch classes, and length
 * scales (sub-threshold, around both inflection points, and far tail)
 * over several hundred seeded trials and all four technology nodes, so
 * future refactors of the evaluation hot path have a broad randomized
 * safety net beyond the curated unit tests.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/inflection.hpp"
#include "core/optimal.hpp"
#include "core/policies.hpp"
#include "core/savings.hpp"
#include "power/technology.hpp"
#include "util/random.hpp"

using namespace leakbound;
using namespace leakbound::core;
using interval::Interval;
using interval::IntervalKind;
using interval::PrefetchClass;

namespace {

/**
 * A random interval population spanning every kind/class and several
 * length scales (@p inner_only restricts to Inner, the Appendix
 * theorem's scope).  ends_in_reuse stays true for Inner intervals: the
 * Figure 5 transcription uses the paper's default accounting, which
 * charges CD on every slept Inner interval (Section 3.1).
 */
std::vector<Interval>
random_population(std::uint64_t seed, std::size_t n,
                  bool inner_only = false)
{
    util::Rng rng(seed);
    std::vector<Interval> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        Interval iv;
        const std::uint64_t kind_draw =
            inner_only ? 0 : rng.next_below(100);
        if (kind_draw < 88)
            iv.kind = IntervalKind::Inner;
        else if (kind_draw < 92)
            iv.kind = IntervalKind::Leading;
        else if (kind_draw < 96)
            iv.kind = IntervalKind::Trailing;
        else
            iv.kind = IntervalKind::Untouched;

        if (iv.kind == IntervalKind::Inner) {
            iv.pf = static_cast<PrefetchClass>(rng.next_below(3));
            iv.ends_in_reuse = true;
        }

        // Mixed scales: short (active zone), around a, around b for
        // every node (b spans 1057..103084), and a heavy tail.
        switch (rng.next_below(4)) {
          case 0: iv.length = rng.next_in(1, 64); break;
          case 1: iv.length = rng.next_in(1, 2'000); break;
          case 2: iv.length = rng.next_in(500, 120'000); break;
          default: iv.length = rng.next_in(10'000, 5'000'000); break;
        }
        out.push_back(iv);
    }
    return out;
}

/** Every stock policy of core/policies.hpp under @p model. */
std::vector<PolicyPtr>
policy_zoo(const EnergyModel &model)
{
    const InflectionPoints points = compute_inflection(model);
    const std::vector<PrefetchClass> both = {PrefetchClass::NextLine,
                                             PrefetchClass::Stride};
    std::vector<PolicyPtr> zoo;
    zoo.push_back(make_always_active(model));
    zoo.push_back(make_opt_drowsy(model));
    zoo.push_back(make_opt_sleep(model, points.drowsy_sleep));
    zoo.push_back(make_opt_sleep(model, 10'000));
    zoo.push_back(make_decay_sleep(model, 10'000));
    zoo.push_back(make_decay_sleep(model, 2'000));
    zoo.push_back(make_hybrid(model, points.drowsy_sleep));
    zoo.push_back(make_hybrid(model, 4'000));
    zoo.push_back(make_opt_hybrid(model));
    zoo.push_back(make_periodic_drowsy(model, 2'000));
    zoo.push_back(make_periodic_drowsy(model, 32'000));
    zoo.push_back(make_prefetch(model, PrefetchVariant::A, both));
    zoo.push_back(make_prefetch(model, PrefetchVariant::B, both));
    zoo.push_back(make_prefetch_blend(model, 3'000, both));
    return zoo;
}

/** Oracle energy of @p raw: all-active baseline minus Fig. 5 saving. */
Energy
oracle_energy(const EnergyModel &model, const InflectionPoints &points,
              const std::vector<Interval> &raw)
{
    Energy active = 0.0;
    for (const Interval &iv : raw)
        active += model.energy(Mode::Active, iv.length, iv.kind);
    const OptimalSaving s = optimal_leakage(model, points, raw);
    return active - s.total_saving;
}

} // namespace

TEST(OracleProperty, EnvelopeDominatesEveryStockPolicy)
{
    // The OPT-Hybrid policy is the per-interval lower envelope of the
    // three mode energies, so no stock policy may dissipate less on ANY
    // population — mixed kinds and prefetch classes included.
    // ~400 (trial, node) combinations x 14 policies x 300 intervals.
    constexpr std::size_t kTrials = 100;
    constexpr std::size_t kIntervals = 300;

    for (power::TechNode node : power::all_nodes()) {
        const EnergyModel model(power::node_params(node));
        const auto zoo = policy_zoo(model);
        const auto envelope = make_opt_hybrid(model);

        for (std::size_t trial = 0; trial < kTrials; ++trial) {
            const std::uint64_t seed =
                0xbead'5eed ^ (static_cast<std::uint64_t>(node) << 32) ^
                trial;
            const auto raw = random_population(seed, kIntervals);
            const Energy oracle =
                evaluate_policy_raw(*envelope, raw, /*num_frames=*/1,
                                    /*total_cycles=*/1)
                    .total;

            for (const PolicyPtr &policy : zoo) {
                const SavingsResult r = evaluate_policy_raw(
                    *policy, raw, /*num_frames=*/1,
                    /*total_cycles=*/1); // baseline unused for totals
                const double slack =
                    1e-9 * std::max(1.0, std::abs(r.total));
                EXPECT_LE(oracle, r.total + slack)
                    << policy->name() << " beats the oracle on node "
                    << power::node_params(node).name << ", seed " << seed;
            }
        }
    }
}

TEST(OracleProperty, Fig5OracleIsMaximalOnInnerPopulations)
{
    // The Appendix theorem, as transcribed in core/optimal.*: on Inner
    // intervals the bracketed rule (active/(0,a], drowsy/(a,b],
    // sleep/(b,inf)) equals the exact envelope and therefore lower-
    // bounds every stock policy.  (On Leading/Trailing/Untouched
    // intervals sleep has no transition cost, so the Inner-derived
    // brackets are deliberately not minimal there — the envelope test
    // above covers those kinds.)
    for (power::TechNode node : power::all_nodes()) {
        const EnergyModel model(power::node_params(node));
        const InflectionPoints points = compute_inflection(model);
        const auto zoo = policy_zoo(model);
        const auto hybrid = make_opt_hybrid(model);

        for (std::uint64_t trial = 0; trial < 50; ++trial) {
            const auto raw = random_population(
                0xfeed'face ^ (trial * 977) ^
                    static_cast<std::uint64_t>(node),
                500, /*inner_only=*/true);
            const Energy oracle = oracle_energy(model, points, raw);

            // Agrees with the envelope policy to rounding...
            const SavingsResult env =
                evaluate_policy_raw(*hybrid, raw, 1, 1);
            EXPECT_NEAR(oracle, env.total,
                        1e-9 * std::max(1.0, std::abs(env.total)))
                << "node " << power::node_params(node).name << ", trial "
                << trial;

            // ...and dominates every stock policy.
            for (const PolicyPtr &policy : zoo) {
                const SavingsResult r =
                    evaluate_policy_raw(*policy, raw, 1, 1);
                const double slack =
                    1e-9 * std::max(1.0, std::abs(r.total));
                EXPECT_LE(oracle, r.total + slack)
                    << policy->name() << " beats the Fig. 5 oracle on "
                    << power::node_params(node).name << ", trial "
                    << trial;
            }
        }
    }
}

TEST(OracleProperty, SavingsStayWithinUnitIntervalOnRandomPopulations)
{
    // evaluate_policy_raw with a real baseline: savings of every stock
    // policy land in [0 - eps, 1] (no policy can beat "everything off",
    // and none may cost more than always-active... except decay/periodic
    // overheads, which may push slightly below zero but never above 1).
    const EnergyModel model(power::node_params(power::TechNode::Nm70));
    const auto zoo = policy_zoo(model);

    for (std::uint64_t trial = 0; trial < 50; ++trial) {
        const auto raw = random_population(0xabcd ^ (trial * 131), 400);
        std::uint64_t total_len = 0;
        for (const auto &iv : raw)
            total_len += iv.length;
        // One synthetic frame whose timeline is the concatenation.
        for (const PolicyPtr &policy : zoo) {
            const SavingsResult r =
                evaluate_policy_raw(*policy, raw, 1, total_len);
            EXPECT_LE(r.savings, 1.0 + 1e-12) << policy->name();
            EXPECT_GE(r.total, 0.0) << policy->name();
        }
    }
}
