/**
 * @file
 * Workload abstraction: a deterministic generator of the dynamic
 * instruction stream (PCs + data addresses) that the timing core
 * executes.  Synthetic programs (loop nests, call graphs) and trace
 * replays all implement this interface.
 */

#ifndef LEAKBOUND_WORKLOAD_WORKLOAD_HPP
#define LEAKBOUND_WORKLOAD_WORKLOAD_HPP

#include <memory>
#include <string>
#include <vector>

#include "trace/record.hpp"

namespace leakbound::workload {

/** A generator of dynamic instructions. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Benchmark name (e.g. "gzip"). */
    virtual std::string name() const = 0;

    /**
     * Produce the next dynamic instruction.  @return false when the
     * stream is exhausted (synthetic programs are typically endless;
     * the core bounds execution by instruction count).
     */
    virtual bool next(trace::MicroOp &op) = 0;

    /** Restart the stream deterministically from the beginning. */
    virtual void reset() = 0;
};

/** Owning workload handle. */
using WorkloadPtr = std::unique_ptr<Workload>;

/**
 * Round-robin phase interleaver: runs each child for its quantum of
 * instructions, then moves to the next, looping forever.  Used to give
 * benchmarks multi-phase behaviour (e.g. parse vs optimize phases),
 * which creates the very long cross-phase idle intervals the 180nm
 * results depend on.
 */
class CompositeWorkload final : public Workload
{
  public:
    /** One phase: a child workload and its per-visit quantum. */
    struct Phase
    {
        WorkloadPtr child;
        std::uint64_t quantum;
    };

    CompositeWorkload(std::string name, std::vector<Phase> phases);

    std::string name() const override { return name_; }
    bool next(trace::MicroOp &op) override;
    void reset() override;

  private:
    std::string name_;
    std::vector<Phase> phases_;
    std::size_t current_ = 0;
    std::uint64_t executed_in_phase_ = 0;
};

} // namespace leakbound::workload

#endif // LEAKBOUND_WORKLOAD_WORKLOAD_HPP
