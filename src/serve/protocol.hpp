/**
 * @file
 * Wire protocol of the leakboundd experiment service.
 *
 * Transport: each message is one frame — a 4-byte little-endian length
 * prefix followed by exactly that many bytes of UTF-8 JSON.  Frames
 * flow in strict request/response pairs over a blocking stream socket
 * (Unix-domain or TCP); a client may pipeline multiple pairs over one
 * connection.  The length prefix is capped (kDefaultMaxFrameBytes) so
 * a lying or corrupted prefix cannot make the receiver allocate
 * gigabytes — an oversized prefix is CorruptData, not an allocation.
 *
 * Requests are JSON objects dispatched on their "type" member:
 *
 *   {"type": "ping"}                      -> {"status":"ok","type":"pong"}
 *   {"type": "health"}                    -> the HealthSnapshot object
 *   {"type": "stats"}                     -> the StatsSnapshot object
 *   {"type": "run", "benchmarks": [...],
 *    "instructions": N, ...}              -> the run response (below)
 *
 * Every response carries "status": "ok" or "error"; error responses
 * add "kind" (a util::error_kind_name bucket — the client rebuilds a
 * typed util::Status from it) and "message".  The run response mirrors
 * the bench JSON report schema (bench/bench_common.hpp): "suites",
 * "benchmarks" (each with a "result_fnv" digest of its
 * core::serialize_result bytes, plus the hex "payload" itself when the
 * request asked), "failures" and "cache_health", so existing report
 * consumers parse daemon output unchanged.
 */

#ifndef LEAKBOUND_SERVE_PROTOCOL_HPP
#define LEAKBOUND_SERVE_PROTOCOL_HPP

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/experiment.hpp"
#include "core/experiment_request.hpp"
#include "util/json.hpp"
#include "util/net.hpp"
#include "util/status.hpp"

namespace leakbound::serve {

/** Frame payload ceiling: prefixes above this are rejected. */
inline constexpr std::size_t kDefaultMaxFrameBytes = 16u << 20;

/** Bytes of the length prefix preceding every frame payload. */
inline constexpr std::size_t kFrameHeaderBytes = 4;

/**
 * Send @p payload as one length-prefixed frame.  Fails with
 * InvalidArgument (without writing anything) when the payload exceeds
 * @p max_frame — the sender must never emit a frame the peer is
 * contractually required to reject.
 */
util::Status send_frame(const util::net::Socket &socket,
                        const std::string &payload,
                        std::size_t max_frame = kDefaultMaxFrameBytes);

/**
 * Receive one frame payload.  ConnectionClosed when the peer hung up
 * cleanly between frames; CorruptData on a truncated header/payload or
 * a length prefix above @p max_frame.
 */
util::Expected<std::string>
recv_frame(const util::net::Socket &socket,
           std::size_t max_frame = kDefaultMaxFrameBytes);

/**
 * recv_frame with a wall-clock bound per phase (header, payload):
 * IoError once @p deadline_ms elapse without the bytes arriving.  The
 * supervisor's health probes and control plane use this — neither may
 * ever park forever behind a wedged or malicious peer.
 */
util::Expected<std::string>
recv_frame_deadline(const util::net::Socket &socket,
                    std::size_t max_frame, int deadline_ms);

/** Lower-case hex of @p bytes (the "payload" member encoding). */
std::string hex_encode(const std::string &bytes);

/** Inverse of hex_encode; CorruptData on odd length or non-hex. */
util::Expected<std::string> hex_decode(const std::string &hex);

/** Render the error response frame for @p status. */
std::string render_error(const util::Status &status);

/** Render the {"status":"ok","type":"pong"} ping response. */
std::string render_pong();

/** What the /stats request reports (server fills, protocol renders). */
struct StatsSnapshot
{
    std::uint64_t requests_served = 0;   ///< run requests answered
    std::uint64_t dedup_hits = 0;        ///< joined an in-flight twin
    std::uint64_t response_lru_hits = 0; ///< answered from the response LRU
    std::uint64_t response_lru_evictions = 0; ///< LRU entries evicted
    std::uint64_t response_lru_entries = 0;   ///< instantaneous LRU size
    std::uint64_t response_lru_bytes = 0;     ///< instantaneous LRU bytes
    std::uint64_t cache_hits = 0;        ///< benchmarks loaded, not simulated
    std::uint64_t analytic_runs = 0;     ///< benchmarks the fast path skipped
    std::uint64_t sim_runs = 0;          ///< benchmarks simulated end to end
    /** sim_runs broken down by effective decision-logic lane. */
    std::uint64_t kernel_path_runs = 0;    ///< every cache kernelized
    std::uint64_t reference_path_runs = 0; ///< every cache on reference
    std::uint64_t mixed_path_runs = 0;     ///< lanes disagreed (16-way L2)
    std::uint64_t rejected_overloaded = 0;
    std::uint64_t rejected_deadline = 0; ///< shed: deadline unmeetable
    std::uint64_t rejected_shutting_down = 0;
    std::uint64_t protocol_errors = 0;   ///< malformed frames/requests
    std::uint64_t sessions_accepted = 0;
    std::uint64_t open_connections = 0;  ///< instantaneous live connections
    std::uint64_t queue_depth = 0;       ///< requests admitted, not started
    std::uint64_t running = 0;           ///< suites executing right now
    std::uint64_t locks_broken = 0;      ///< stale cache locks broken (crash hygiene)
    double latency_p50_ms = 0.0;         ///< over served run requests
    double latency_p99_ms = 0.0;
    double uptime_seconds = 0.0;
};

/** Render the stats response frame. */
std::string render_stats(const StatsSnapshot &stats);

/**
 * Write the StatsSnapshot members into an already-open JSON object.
 * The supervisor uses this to emit its aggregated /stats with the
 * exact field names and order of a single shard's, plus its own
 * "fleet" block appended.
 */
void write_stats_fields(util::JsonWriter &w, const StatsSnapshot &stats);

/**
 * What the /health request reports: process identity plus liveness.
 * Cheap by design — the supervisor probes it on a deadline, so the
 * render must never touch the scheduler's queues or block.
 */
struct HealthSnapshot
{
    int shard_index = -1;     ///< fleet position; -1 when unsharded
    std::int64_t pid = 0;     ///< the answering process
    bool draining = false;    ///< drain requested; no new work admitted
    double uptime_seconds = 0.0;
};

/** Render the health response frame. */
std::string render_health(const HealthSnapshot &health);

/**
 * Render the run response for @p outcome.  @p fingerprint is the dedup
 * key (core::fingerprint_request); every client in a dedup group
 * receives these exact bytes.  Per-benchmark entries carry
 * "result_fnv", the FNV-1a digest of core::serialize_result — the same
 * byte-identity oracle the cache tests use — and, when
 * @p request.want_payload, the full serialized result as hex.
 */
std::string render_run_response(const core::SuiteOutcome &outcome,
                                const core::ExperimentRequest &request,
                                std::uint64_t fingerprint);

} // namespace leakbound::serve

#endif // LEAKBOUND_SERVE_PROTOCOL_HPP
