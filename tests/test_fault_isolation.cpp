/**
 * @file
 * Tests of fault isolation in the suite runner and the policy grid:
 * one job dying (hook exception, typed StatusError, interrupt) must be
 * recorded in the outcome while every sibling lands byte-identical to
 * a fault-free run, in both the serial and the pooled path.
 *
 * These tests run in every build (the SuiteJobHook seam replaces the
 * fault injector, which only exists in chaos builds) and carry the
 * `sanitize` CTest label so TSan sees the failure paths too.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/artifact_cache.hpp"
#include "core/experiment.hpp"
#include "core/policies.hpp"
#include "core/savings.hpp"
#include "interval/interval_histogram.hpp"
#include "power/technology.hpp"
#include "util/interrupt.hpp"
#include "util/random.hpp"
#include "util/status.hpp"

using namespace leakbound;
using namespace leakbound::core;

namespace {

ExperimentConfig
small_config(unsigned jobs)
{
    ExperimentConfig config;
    config.instructions = 40'000;
    config.jobs = jobs;
    return config;
}

const std::vector<std::string> kNames = {"gzip", "gcc", "ammp", "vortex"};

/** A hook that throws for exactly one benchmark, every attempt. */
SuiteJobHook
poison(const std::string &victim)
{
    return [victim](const std::string &name) {
        if (name == victim)
            throw util::StatusError(util::Status(
                util::ErrorKind::CorruptData, "poisoned " + name));
    };
}

} // namespace

TEST(FaultIsolation, OneFailingJobLeavesSiblingsByteIdentical)
{
    const auto reference = run_suite(kNames, small_config(1));
    ASSERT_EQ(reference.size(), kNames.size());

    for (const unsigned jobs : {1u, 4u}) {
        SuiteOutcome outcome = run_suite_isolated(
            kNames, small_config(jobs), poison("gcc"));

        ASSERT_EQ(outcome.slots.size(), kNames.size()) << jobs;
        ASSERT_EQ(outcome.failures.size(), 1u) << jobs;
        EXPECT_FALSE(outcome.interrupted) << jobs;

        const SuiteJobFailure &failure = outcome.failures.front();
        EXPECT_EQ(failure.index, 1u);
        EXPECT_EQ(failure.workload, "gcc");
        EXPECT_EQ(failure.kind, util::ErrorKind::CorruptData);
        EXPECT_NE(failure.message.find("poisoned gcc"), std::string::npos);
        // CorruptData is not transient, so no retry was attempted.
        EXPECT_EQ(failure.retries, 0u);

        for (std::size_t i = 0; i < kNames.size(); ++i) {
            if (kNames[i] == "gcc") {
                EXPECT_FALSE(outcome.slots[i].has_value()) << jobs;
                continue;
            }
            ASSERT_TRUE(outcome.slots[i].has_value())
                << kNames[i] << " jobs=" << jobs;
            EXPECT_EQ(serialize_result(*outcome.slots[i]),
                      serialize_result(reference[i]))
                << kNames[i] << " jobs=" << jobs;
        }

        // surviving() drops exactly the failed slot, preserving order.
        auto survivors = std::move(outcome).surviving();
        ASSERT_EQ(survivors.size(), kNames.size() - 1) << jobs;
        EXPECT_EQ(survivors[0].workload, "gzip");
        EXPECT_EQ(survivors[1].workload, "ammp");
        EXPECT_EQ(survivors[2].workload, "vortex");
    }
}

TEST(FaultIsolation, TransientFailuresRetryUntilExhausted)
{
    // An io_error kind is transient: the job is retried kMaxJobRetries
    // times, and the recorded failure carries the retry count.
    std::atomic<unsigned> attempts{0};
    SuiteJobHook hook = [&attempts](const std::string &name) {
        if (name == "ammp") {
            attempts.fetch_add(1);
            throw util::StatusError(util::Status(
                util::ErrorKind::IoError, "flaky disk under " + name));
        }
    };

    SuiteOutcome outcome =
        run_suite_isolated(kNames, small_config(2), hook);
    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_EQ(outcome.failures.front().workload, "ammp");
    EXPECT_EQ(outcome.failures.front().kind, util::ErrorKind::IoError);
    EXPECT_EQ(outcome.failures.front().retries, kMaxJobRetries);
    EXPECT_EQ(attempts.load(), kMaxJobRetries + 1);
}

TEST(FaultIsolation, TransientFailureThatRecoversLeavesNoTrace)
{
    const auto reference = run_suite(kNames, small_config(1));

    // Fail the first attempt only; the retry must succeed and the
    // result must be byte-identical to a run that never failed.
    std::atomic<unsigned> attempts{0};
    SuiteJobHook hook = [&attempts](const std::string &name) {
        if (name == "vortex" && attempts.fetch_add(1) == 0)
            throw util::StatusError(util::Status(
                util::ErrorKind::LockTimeout, "first try loses"));
    };

    SuiteOutcome outcome =
        run_suite_isolated(kNames, small_config(4), hook);
    EXPECT_TRUE(outcome.failures.empty());
    EXPECT_EQ(attempts.load(), 2u);
    ASSERT_EQ(outcome.slots.size(), kNames.size());
    for (std::size_t i = 0; i < kNames.size(); ++i) {
        ASSERT_TRUE(outcome.slots[i].has_value()) << kNames[i];
        EXPECT_EQ(serialize_result(*outcome.slots[i]),
                  serialize_result(reference[i]))
            << kNames[i];
    }
}

TEST(FaultIsolation, PlainExceptionsLandAsInternalErrors)
{
    SuiteJobHook hook = [](const std::string &name) {
        if (name == "gzip")
            throw std::runtime_error("untyped failure");
    };
    SuiteOutcome outcome =
        run_suite_isolated(kNames, small_config(1), hook);
    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_EQ(outcome.failures.front().kind, util::ErrorKind::Internal);
    EXPECT_NE(outcome.failures.front().message.find("untyped failure"),
              std::string::npos);
    EXPECT_EQ(outcome.failures.front().retries, 0u);
}

TEST(FaultIsolation, InterruptStopsDispatchAndFlagsOutcome)
{
    util::clear_interrupt();
    // Interrupt before the run: no job may start, every slot is empty,
    // and all failures carry the interrupted kind.
    util::simulate_interrupt(SIGINT);
    SuiteOutcome outcome = run_suite_isolated(kNames, small_config(1));
    EXPECT_TRUE(outcome.interrupted);
    ASSERT_EQ(outcome.failures.size(), kNames.size());
    for (const SuiteJobFailure &failure : outcome.failures) {
        EXPECT_EQ(failure.kind, util::ErrorKind::Interrupted);
        EXPECT_EQ(failure.retries, 0u);
    }
    EXPECT_EQ(util::pending_signal(), SIGINT);
    EXPECT_EQ(util::interrupt_exit_code(), 128 + SIGINT);
    util::clear_interrupt();
    EXPECT_FALSE(util::interrupt_requested());
    EXPECT_EQ(util::interrupt_exit_code(), 0);
}

TEST(FaultIsolation, MidRunInterruptKeepsFinishedJobs)
{
    util::clear_interrupt();
    const auto reference = run_suite({"gzip"}, small_config(1));

    // Raise the interrupt from inside job 0's hook: gzip still runs to
    // completion (it already started), the remaining three jobs are
    // skipped as interrupted.
    SuiteJobHook hook = [](const std::string &name) {
        if (name == "gzip")
            util::simulate_interrupt(SIGTERM);
    };
    SuiteOutcome outcome =
        run_suite_isolated(kNames, small_config(1), hook);
    util::clear_interrupt();

    EXPECT_TRUE(outcome.interrupted);
    ASSERT_EQ(outcome.slots.size(), kNames.size());
    ASSERT_TRUE(outcome.slots[0].has_value());
    EXPECT_EQ(serialize_result(*outcome.slots[0]),
              serialize_result(reference[0]));
    ASSERT_EQ(outcome.failures.size(), kNames.size() - 1);
    for (const SuiteJobFailure &failure : outcome.failures)
        EXPECT_EQ(failure.kind, util::ErrorKind::Interrupted);
}

// ---------------------------------------------------------------------
// Policy-grid isolation.
// ---------------------------------------------------------------------

namespace {

const EnergyModel &
model70()
{
    static const EnergyModel m(
        power::node_params(power::TechNode::Nm70));
    return m;
}

/** A policy whose evaluation always dies with a typed error. */
class ThrowingPolicy : public Policy
{
  public:
    std::string name() const override { return "Throwing"; }
    Energy interval_energy(Cycles, interval::IntervalKind,
                           interval::PrefetchClass, bool) const override
    {
        throw util::StatusError(util::Status(
            util::ErrorKind::FaultInjected, "grid cell blew up"));
    }
    std::vector<Cycles> thresholds() const override { return {}; }
    Mode dominant_mode(Cycles, interval::IntervalKind,
                       interval::PrefetchClass, bool) const override
    {
        return Mode::Active;
    }
    bool is_oracle() const override { return false; }
};

/** A small deterministic interval population. */
interval::IntervalHistogramSet
tiny_population(std::uint64_t seed)
{
    util::Rng rng(seed);
    interval::IntervalHistogramSet set =
        interval::IntervalHistogramSet::with_default_edges({});
    for (int i = 0; i < 500; ++i) {
        interval::Interval iv;
        iv.kind = interval::IntervalKind::Inner;
        iv.length = rng.next_in(1, 200'000);
        iv.pf = static_cast<interval::PrefetchClass>(rng.next_below(3));
        iv.ends_in_reuse = rng.next_bool(0.5);
        set.add(iv);
    }
    set.set_run_info(256, 1'000'000);
    return set;
}

} // namespace

TEST(FaultIsolation, GridIsolatesThrowingPolicyRow)
{
    const auto set_a = tiny_population(1);
    const auto set_b = tiny_population(2);
    const auto healthy = make_always_active(model70());
    const auto drowsy = make_opt_drowsy(model70());
    ThrowingPolicy bad;

    const std::vector<const Policy *> policies = {healthy.get(), &bad,
                                                  drowsy.get()};
    const std::vector<const interval::IntervalHistogramSet *> sets = {
        &set_a, &set_b};

    for (const unsigned jobs : {1u, 4u}) {
        GridOutcome outcome =
            evaluate_policy_grid_isolated(policies, sets, jobs);
        ASSERT_EQ(outcome.cells.size(), 6u) << jobs;
        ASSERT_EQ(outcome.failures.size(), 2u) << jobs;

        // The bad policy's row (cells 2 and 3) failed with its kind...
        for (const GridFailure &failure : outcome.failures) {
            EXPECT_EQ(failure.policy, "Throwing") << jobs;
            EXPECT_EQ(failure.kind, util::ErrorKind::FaultInjected)
                << jobs;
            EXPECT_TRUE(failure.cell == 2 || failure.cell == 3) << jobs;
            EXPECT_FALSE(outcome.cells[failure.cell].has_value()) << jobs;
        }
        // ...and the healthy cells match direct evaluation exactly.
        const std::vector<const Policy *> good = {healthy.get(),
                                                  drowsy.get()};
        const std::size_t good_cells[] = {0, 1, 4, 5};
        for (const std::size_t cell : good_cells) {
            ASSERT_TRUE(outcome.cells[cell].has_value()) << jobs;
            const Policy &policy = *good[cell / 4];
            const auto &set = cell % 2 == 0 ? set_a : set_b;
            const SavingsResult direct = evaluate_policy(policy, set);
            EXPECT_EQ(outcome.cells[cell]->total, direct.total) << jobs;
            EXPECT_EQ(outcome.cells[cell]->savings, direct.savings)
                << jobs;
        }
    }

    // The all-or-nothing wrapper surfaces the first failure as a typed
    // exception.
    try {
        (void)evaluate_policy_grid(policies, sets, 2);
        FAIL() << "expected StatusError";
    } catch (const util::StatusError &e) {
        EXPECT_EQ(e.status().kind(), util::ErrorKind::FaultInjected);
        EXPECT_NE(e.status().message().find("Throwing"),
                  std::string::npos);
    }
}
