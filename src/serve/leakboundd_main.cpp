/**
 * @file
 * `leakboundd` — the resident experiment daemon.
 *
 * Binds a Unix-domain socket (and optionally a loopback TCP port),
 * then serves length-prefixed JSON experiment requests until SIGINT /
 * SIGTERM, at which point it drains: in-flight experiments finish and
 * answer their clients, queued ones fail with shutting_down, and the
 * process exits 0.
 *
 * With --shards N the process becomes a shard supervisor instead: N
 * forked children each run the event loop on a derived endpoint (unix
 * "<socket>.<i>", TCP base port + 1 + i) over the shared artifact
 * cache, while the parent keeps them alive (heartbeats, /health
 * probes, capped-backoff restarts, crash-loop breaker) and answers
 * ping/health/stats on the base endpoint.  See README "Running as a
 * service".
 */

#include <cstdio>

#include "core/artifact_cache.hpp"
#include "core/suite_flags.hpp"
#include "serve/server.hpp"
#include "serve/supervisor.hpp"
#include "util/cli.hpp"
#include "util/fault_injection.hpp"
#include "util/interrupt.hpp"
#include "util/logging.hpp"

using namespace leakbound;

namespace {

int
run_fleet(serve::SupervisorConfig config)
{
    serve::Supervisor supervisor(std::move(config));
    if (util::Status started = supervisor.start(); !started.ok())
        util::fatal("cannot start fleet: ", started.to_string());
    std::fflush(stdout);

    const util::Status ran = supervisor.run();
    if (ran.ok()) {
        std::printf("leakboundd: fleet drained cleanly (%llu restarts)\n",
                    static_cast<unsigned long long>(
                        supervisor.counters().restarts_total));
        return 0;
    }
    if (ran.kind() == util::ErrorKind::CrashLoop) {
        // The message IS the JSON incident report — print it whole so
        // an operator (or the smoke test) can parse the exit.
        std::fprintf(stderr, "leakboundd: crash-loop breaker tripped\n%s\n",
                     ran.message().c_str());
        return 1;
    }
    std::fprintf(stderr, "leakboundd: fleet drain failed: %s\n",
                 ran.to_string().c_str());
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    util::install_signal_handlers();
    util::fault::configure_from_env();

    util::Cli cli("leakboundd",
                  "resident experiment daemon: serves run/stats/ping "
                  "requests over length-prefixed JSON frames");
    core::SuiteFlagSpec spec;
    spec.instructions = false; // budgets come per request
    spec.json = false;
    spec.csv_dir = false;
    spec.suite_passes = false;
    spec.engine = false; // engine comes per request too
    core::register_suite_flags(cli, spec); // --jobs, --cache-dir
    cli.add_flag("socket", "unix-domain socket path to listen on",
                 "leakboundd.sock");
    cli.add_flag("tcp", "also listen on --tcp-host:--tcp-port", "0");
    cli.add_flag("tcp-host", "TCP listen address (numeric IPv4)",
                 "127.0.0.1");
    cli.add_flag("tcp-port", "TCP listen port (0 = kernel-assigned)",
                 "0");
    cli.add_flag("workers", "concurrent experiment suites", "1");
    cli.add_flag("queue-limit",
                 "requests admitted-but-not-started before new ones "
                 "are rejected overloaded",
                 "8");
    cli.add_flag("max-instructions",
                 "largest per-benchmark instruction budget a request "
                 "may ask for",
                 "64000000");
    cli.add_flag("max-sessions", "concurrent client connections",
                 "10000");
    cli.add_flag("response-cache-mb",
                 "byte budget (MiB) of the rendered-response LRU "
                 "(0 disables it)",
                 "64");
    cli.add_flag("shards",
                 "run a supervised fleet of N shard processes instead "
                 "of a single daemon (0 = single daemon)",
                 "0");
    cli.add_flag("heartbeat-timeout-ms",
                 "fleet: heartbeat silence treated as a wedged shard",
                 "5000");
    cli.add_flag("health-interval-ms",
                 "fleet: spacing of per-shard health probes",
                 "1000");
    cli.add_flag("restart-backoff-ms",
                 "fleet: initial restart backoff (doubles, capped)",
                 "100");
    cli.add_flag("restart-backoff-cap-ms",
                 "fleet: restart backoff ceiling", "5000");
    cli.add_flag("restart-limit",
                 "fleet: deaths tolerated per shard inside "
                 "--restart-window-s before the crash-loop breaker "
                 "trips",
                 "5");
    cli.add_flag("restart-window-s",
                 "fleet: sliding window of the crash-loop breaker",
                 "30");
    cli.add_flag("drain-deadline-ms",
                 "fleet: grace between SIGTERM fan-out and SIGKILL",
                 "10000");
    cli.parse(argc, argv);

    serve::ServerConfig config;
    config.unix_path = cli.get("socket");
    config.listen_tcp = cli.get_bool("tcp");
    config.tcp_host = cli.get("tcp-host");
    config.tcp_port = static_cast<std::uint16_t>(cli.get_u64("tcp-port"));
    config.max_instructions = cli.get_u64("max-instructions");
    config.max_sessions =
        static_cast<unsigned>(cli.get_u64("max-sessions"));
    config.scheduler.workers =
        static_cast<unsigned>(cli.get_u64("workers"));
    config.scheduler.max_queue = cli.get_u64("queue-limit");
    config.scheduler.response_cache_bytes =
        static_cast<std::size_t>(cli.get_u64("response-cache-mb")) << 20;
    config.scheduler.suite_jobs = core::suite_jobs(cli);
    config.scheduler.cache_dir =
        core::resolve_cache_dir(cli.get("cache-dir"));

    const unsigned shards =
        static_cast<unsigned>(cli.get_u64("shards"));
    if (shards > 0) {
        serve::SupervisorConfig fleet;
        fleet.shards = shards;
        fleet.shard = std::move(config);
        fleet.heartbeat_timeout_ms =
            static_cast<int>(cli.get_u64("heartbeat-timeout-ms"));
        fleet.health_interval_ms =
            static_cast<int>(cli.get_u64("health-interval-ms"));
        fleet.restart_backoff_initial_ms =
            static_cast<int>(cli.get_u64("restart-backoff-ms"));
        fleet.restart_backoff_cap_ms =
            static_cast<int>(cli.get_u64("restart-backoff-cap-ms"));
        fleet.restart_limit =
            static_cast<unsigned>(cli.get_u64("restart-limit"));
        fleet.restart_window_s =
            static_cast<int>(cli.get_u64("restart-window-s"));
        fleet.drain_deadline_ms =
            static_cast<int>(cli.get_u64("drain-deadline-ms"));
        if (!fleet.shard.unix_path.empty())
            std::printf("leakboundd: supervising %u shard(s) on unix "
                        "%s.{0..%u} (control on %s)\n",
                        shards, fleet.shard.unix_path.c_str(), shards - 1,
                        fleet.shard.unix_path.c_str());
        if (fleet.shard.listen_tcp)
            std::printf("leakboundd: supervising %u shard(s) on tcp "
                        "%s:%u+1..%u (control on :%u)\n",
                        shards, fleet.shard.tcp_host.c_str(),
                        static_cast<unsigned>(fleet.shard.tcp_port),
                        static_cast<unsigned>(fleet.shard.tcp_port) +
                            shards,
                        static_cast<unsigned>(fleet.shard.tcp_port));
        return run_fleet(std::move(fleet));
    }

    serve::Server server(std::move(config));
    if (util::Status bound = server.start(); !bound.ok())
        util::fatal("cannot start: ", bound.to_string());

    if (!cli.get("socket").empty())
        std::printf("leakboundd: listening on unix %s\n",
                    cli.get("socket").c_str());
    if (cli.get_bool("tcp"))
        std::printf("leakboundd: listening on tcp %s:%u\n",
                    cli.get("tcp-host").c_str(),
                    static_cast<unsigned>(server.tcp_port()));
    std::fflush(stdout);

    if (util::Status served = server.serve(); !served.ok())
        util::fatal("serve failed: ", served.to_string());

    const serve::StatsSnapshot stats = server.stats();
    std::printf("leakboundd: drained after %.1fs — %llu served, "
                "%llu dedup hits, %llu response-LRU hits, "
                "%llu cache hits, %llu rejected\n",
                stats.uptime_seconds,
                static_cast<unsigned long long>(stats.requests_served),
                static_cast<unsigned long long>(stats.dedup_hits),
                static_cast<unsigned long long>(stats.response_lru_hits),
                static_cast<unsigned long long>(stats.cache_hits),
                static_cast<unsigned long long>(
                    stats.rejected_overloaded + stats.rejected_deadline +
                    stats.rejected_shutting_down));
    return 0;
}
