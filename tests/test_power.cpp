/**
 * @file
 * Unit tests for the power module: calibrated nodes, parameter
 * validation, the HotLeakage-style trends, CACTI-lite scaling and the
 * ITRS projection.
 */

#include <gtest/gtest.h>

#include "power/cacti_lite.hpp"
#include "power/hotleakage.hpp"
#include "power/itrs.hpp"
#include "power/technology.hpp"

using namespace leakbound;
using namespace leakbound::power;

TEST(Technology, PaperNodesExist)
{
    EXPECT_EQ(all_nodes().size(), 4u);
    EXPECT_STREQ(node_name(TechNode::Nm70), "70nm");
    EXPECT_STREQ(node_name(TechNode::Nm180), "180nm");
}

TEST(Technology, PaperVddVthValues)
{
    // Paper Table 2 values, exactly.
    const auto &n70 = node_params(TechNode::Nm70);
    EXPECT_DOUBLE_EQ(n70.vdd, 0.9);
    EXPECT_DOUBLE_EQ(n70.vth, 0.1902);
    const auto &n100 = node_params(TechNode::Nm100);
    EXPECT_DOUBLE_EQ(n100.vdd, 1.0);
    EXPECT_DOUBLE_EQ(n100.vth, 0.2607);
    const auto &n130 = node_params(TechNode::Nm130);
    EXPECT_DOUBLE_EQ(n130.vdd, 1.5);
    EXPECT_DOUBLE_EQ(n130.vth, 0.3353);
    const auto &n180 = node_params(TechNode::Nm180);
    EXPECT_DOUBLE_EQ(n180.vdd, 2.0);
    EXPECT_DOUBLE_EQ(n180.vth, 0.3979);
}

TEST(Technology, RefetchEnergyGrowsWithFeatureSize)
{
    // Normalized to per-line leakage, the induced-miss energy must
    // grow dramatically toward older nodes (leakage shrinks, dynamic
    // energy grows).
    double prev = 0;
    for (TechNode node : all_nodes()) {
        const auto &p = node_params(node);
        EXPECT_GT(p.refetch_energy, prev);
        prev = p.refetch_energy;
    }
}

TEST(Technology, LookupByName)
{
    EXPECT_EQ(&node_params_by_name("130nm"), &node_params(TechNode::Nm130));
    EXPECT_EXIT(node_params_by_name("45nm"),
                ::testing::ExitedWithCode(2), "unknown technology");
}

TEST(Technology, DefaultTimingsMatchPaper)
{
    const ModeTimings t;
    EXPECT_EQ(t.s1, 30u);
    EXPECT_EQ(t.s3, 3u);
    EXPECT_EQ(t.s4, 4u);
    EXPECT_EQ(t.d1, 3u);
    EXPECT_EQ(t.d3, 3u);
    EXPECT_EQ(t.sleep_overhead(), 37u);
    EXPECT_EQ(t.drowsy_overhead(), 6u);
}

TEST(Technology, TimingsFollowL2Latency)
{
    // s4 = D - s3 per the paper's definition.
    EXPECT_EQ(ModeTimings::with_l2_latency(7).s4, 4u);
    EXPECT_EQ(ModeTimings::with_l2_latency(20).s4, 17u);
    EXPECT_EQ(ModeTimings::with_l2_latency(2).s4, 0u);
}

TEST(Technology, ValidationRejectsBadParams)
{
    TechnologyParams p = node_params(TechNode::Nm70);
    p.drowsy_power = 1.5; // above active
    EXPECT_EXIT(p.validate(), ::testing::ExitedWithCode(2), "drowsy");

    p = node_params(TechNode::Nm70);
    p.sleep_power = 0.9; // above drowsy
    EXPECT_EXIT(p.validate(), ::testing::ExitedWithCode(2), "sleep");

    p = node_params(TechNode::Nm70);
    p.refetch_energy = -1;
    EXPECT_EXIT(p.validate(), ::testing::ExitedWithCode(2), "refetch");

    p = node_params(TechNode::Nm70);
    p.timings.s1 = 1; // sleep overhead below drowsy overhead
    p.timings.s3 = 1;
    p.timings.s4 = 1;
    EXPECT_EXIT(p.validate(), ::testing::ExitedWithCode(2), "Lemma 1");
}

// ------------------------------------------------------------ hotleakage

TEST(HotLeakage, LeakageGrowsAsVthDrops)
{
    LeakageInputs high_vth;
    high_vth.vth = 0.4;
    LeakageInputs low_vth;
    low_vth.vth = 0.19;
    EXPECT_GT(line_leakage_power(low_vth), line_leakage_power(high_vth));
}

TEST(HotLeakage, LeakageGrowsWithTemperature)
{
    LeakageInputs cold;
    cold.temperature_k = 300;
    LeakageInputs hot;
    hot.temperature_k = 380;
    EXPECT_GT(line_leakage_power(hot), line_leakage_power(cold));
}

TEST(HotLeakage, DrowsyRatioInUnitInterval)
{
    LeakageInputs in; // 70nm-ish defaults
    const double ratio = drowsy_ratio(in, 0.3);
    EXPECT_GT(ratio, 0.0);
    EXPECT_LT(ratio, 1.0);
    // Deeper drowsy voltage leaks less.
    EXPECT_LT(drowsy_ratio(in, 0.2), drowsy_ratio(in, 0.5));
}

TEST(HotLeakage, DrowsyRatioRejectsBadVoltages)
{
    LeakageInputs in;
    EXPECT_EXIT(drowsy_ratio(in, 0.0), ::testing::ExitedWithCode(2),
                "vdd_low");
    EXPECT_EXIT(drowsy_ratio(in, in.vdd), ::testing::ExitedWithCode(2),
                "vdd_low");
}

TEST(HotLeakage, DeriveTechnologyIsValid)
{
    LeakageInputs in;
    in.vdd = 0.8;
    in.vth = 0.15;
    const TechnologyParams p =
        derive_technology("custom-50nm", 50.0, in, 0.25, 150.0);
    EXPECT_EQ(p.name, "custom-50nm");
    EXPECT_GT(p.drowsy_power, 0.0);
    EXPECT_LT(p.drowsy_power, 1.0);
    EXPECT_DOUBLE_EQ(p.refetch_energy, 150.0);
}

// ------------------------------------------------------------ cacti-lite

TEST(CactiLite, EnergyGrowsWithSize)
{
    const auto &tech = node_params(TechNode::Nm70);
    CactiGeometry small;
    small.size_bytes = 512 * 1024;
    CactiGeometry big;
    big.size_bytes = 8 * 1024 * 1024;
    EXPECT_LT(relative_read_energy(small, tech),
              relative_read_energy(big, tech));
}

TEST(CactiLite, EnergyGrowsWithVddSquared)
{
    CactiGeometry geom;
    TechnologyParams low = node_params(TechNode::Nm70);
    TechnologyParams high = low;
    high.vdd = 2.0 * low.vdd;
    const double ratio = relative_read_energy(geom, high) /
                         relative_read_energy(geom, low);
    EXPECT_NEAR(ratio, 4.0, 1e-9);
}

TEST(CactiLite, AnchoredAtDefaultGeometry)
{
    const auto &tech = node_params(TechNode::Nm70);
    const CactiGeometry reference;
    EXPECT_NEAR(scaled_refetch_energy(reference, tech),
                tech.refetch_energy, 1e-9);
}

TEST(CactiLite, RejectsDegenerateGeometry)
{
    const auto &tech = node_params(TechNode::Nm70);
    CactiGeometry geom;
    geom.line_bytes = 0;
    EXPECT_EXIT(relative_read_energy(geom, tech),
                ::testing::ExitedWithCode(2), "nonzero");
}

// ------------------------------------------------------------------ itrs

TEST(Itrs, ProjectionIsMonotone)
{
    const auto &points = itrs_projection();
    ASSERT_GE(points.size(), 4u);
    for (std::size_t i = 1; i < points.size(); ++i) {
        EXPECT_LT(points[i - 1].year, points[i].year);
        EXPECT_LT(points[i - 1].leakage_fraction,
                  points[i].leakage_fraction);
    }
    EXPECT_EQ(points.front().year, 1999);
    EXPECT_EQ(points.back().year, 2009);
}

TEST(Itrs, InterpolationAndClamping)
{
    EXPECT_DOUBLE_EQ(itrs_leakage_fraction(1990),
                     itrs_projection().front().leakage_fraction);
    EXPECT_DOUBLE_EQ(itrs_leakage_fraction(2020),
                     itrs_projection().back().leakage_fraction);
    const double mid = itrs_leakage_fraction(2004);
    EXPECT_GT(mid, itrs_leakage_fraction(2003));
    EXPECT_LT(mid, itrs_leakage_fraction(2005));
}
