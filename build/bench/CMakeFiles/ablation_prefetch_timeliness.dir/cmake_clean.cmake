file(REMOVE_RECURSE
  "CMakeFiles/ablation_prefetch_timeliness.dir/ablation_prefetch_timeliness.cpp.o"
  "CMakeFiles/ablation_prefetch_timeliness.dir/ablation_prefetch_timeliness.cpp.o.d"
  "ablation_prefetch_timeliness"
  "ablation_prefetch_timeliness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prefetch_timeliness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
