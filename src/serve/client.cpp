/**
 * @file
 * Implementation of the leakboundd client helpers.
 */

#include "serve/client.hpp"

#include <chrono>
#include <map>
#include <mutex>
#include <set>
#include <thread>

#include "util/fingerprint.hpp"

namespace leakbound::serve {

util::Expected<util::net::Socket>
connect_endpoint(const Endpoint &endpoint)
{
    if (!endpoint.unix_path.empty())
        return util::net::connect_unix(endpoint.unix_path);
    if (endpoint.tcp_port != 0)
        return util::net::connect_tcp(endpoint.tcp_host,
                                      endpoint.tcp_port);
    return util::Status(util::ErrorKind::InvalidArgument,
                        "endpoint needs a socket path or a TCP port");
}

std::string
build_run_request(const RunRequest &request)
{
    util::JsonWriter w;
    w.begin_object();
    w.key("type").value("run");
    w.key("benchmarks").value(request.benchmarks);
    w.key("instructions").value(request.instructions);
    if (request.nl_lead_time != 0)
        w.key("nl_lead_time").value(request.nl_lead_time);
    if (request.collect_l2)
        w.key("collect_l2").value(true);
    if (!request.standard_edges)
        w.key("standard_edges").value(false);
    if (!request.extra_edges.empty()) {
        w.key("extra_edges").begin_array();
        for (const std::uint64_t edge : request.extra_edges)
            w.value(edge);
        w.end_array();
    }
    if (request.want_payload)
        w.key("payload").value(true);
    if (request.engine != "auto")
        w.key("engine").value(request.engine);
    if (request.deadline_ms != 0)
        w.key("deadline_ms").value(request.deadline_ms);
    w.end_object();
    return w.str();
}

std::string
build_stats_request()
{
    util::JsonWriter w;
    w.begin_object();
    w.key("type").value("stats");
    w.end_object();
    return w.str();
}

std::string
build_ping_request()
{
    util::JsonWriter w;
    w.begin_object();
    w.key("type").value("ping");
    w.end_object();
    return w.str();
}

util::Expected<util::JsonValue>
call(const util::net::Socket &socket, const std::string &request_json,
     std::size_t max_frame, std::string *raw_frame)
{
    if (util::Status sent = send_frame(socket, request_json, max_frame);
        !sent.ok())
        return sent;
    auto frame = recv_frame(socket, max_frame);
    if (!frame)
        return frame.status();
    if (raw_frame != nullptr)
        *raw_frame = frame.value();
    auto parsed = util::json_parse(frame.value());
    if (!parsed)
        return parsed.status();
    util::JsonValue response = parsed.take();
    if (!response.is_object()) {
        return util::Status(util::ErrorKind::CorruptData,
                            "response is not a JSON object");
    }
    const util::JsonValue *status = response.find("status");
    if (status == nullptr || !status->is_string()) {
        return util::Status(util::ErrorKind::CorruptData,
                            "response lacks a string \"status\"");
    }
    if (status->string_value() == "ok")
        return response;

    // An error frame: rebuild the typed Status the server serialized.
    const util::JsonValue *kind = response.find("kind");
    const util::JsonValue *message = response.find("message");
    util::ErrorKind decoded = util::ErrorKind::Internal;
    if (kind != nullptr && kind->is_string()) {
        if (auto known =
                util::error_kind_from_name(kind->string_value());
            known && *known != util::ErrorKind::None)
            decoded = *known;
    }
    return util::Status(decoded,
                        message != nullptr && message->is_string()
                            ? message->string_value()
                            : "server-side error");
}

util::Expected<util::JsonValue>
call_endpoint(const Endpoint &endpoint, const std::string &request_json,
              std::size_t max_frame, std::string *raw_frame)
{
    auto socket = connect_endpoint(endpoint);
    if (!socket)
        return socket.status();
    return call(socket.value(), request_json, max_frame, raw_frame);
}

LoadReport
run_load(const Endpoint &endpoint, const RunRequest &request,
         const LoadOptions &options)
{
    const std::string request_json = build_run_request(request);
    LoadReport report;
    std::mutex mutex;
    std::set<std::string> fingerprints;
    std::set<std::uint64_t> response_digests;
    std::uint64_t next = 0;

    /** What one distinct response body means, parsed exactly once. */
    struct BodyClass
    {
        bool ok = false;
        util::ErrorKind kind = util::ErrorKind::Internal;
    };
    std::map<std::uint64_t, BodyClass> body_classes;
    // Classify a raw response frame, memoized by digest: the warm load
    // is overwhelmingly byte-identical bodies, so the JSON parse cost
    // is paid once per distinct body, not once per response.  Call
    // with `mutex` held.
    auto classify = [&](std::uint64_t digest,
                        const std::string &raw) -> const BodyClass & {
        auto it = body_classes.find(digest);
        if (it != body_classes.end())
            return it->second;
        BodyClass parsed;
        if (auto body = util::json_parse(raw);
            body && body.value().is_object()) {
            const util::JsonValue *status = body.value().find("status");
            parsed.ok = status != nullptr && status->is_string() &&
                        status->string_value() == "ok";
            if (parsed.ok) {
                if (const util::JsonValue *fp =
                        body.value().find("request_fingerprint");
                    fp != nullptr && fp->is_string())
                    fingerprints.insert(fp->string_value());
            } else if (const util::JsonValue *kind =
                           body.value().find("kind");
                       kind != nullptr && kind->is_string()) {
                if (auto known = util::error_kind_from_name(
                        kind->string_value());
                    known && *known != util::ErrorKind::None)
                    parsed.kind = *known;
            }
        }
        return body_classes.emplace(digest, parsed).first->second;
    };

    // Held-open idle sockets: opened before the first request, closed
    // after the last response.  Their only job is to exist — the
    // daemon must serve the load loop at full speed while carrying
    // them.
    std::vector<util::net::Socket> idle;
    idle.reserve(options.idle_connections);
    for (unsigned i = 0; i < options.idle_connections; ++i) {
        auto socket = connect_endpoint(endpoint);
        if (!socket)
            break; // fd limit or listener backlog: hold what we got
        idle.push_back(socket.take());
    }
    report.idle_connections_held = idle.size();

    const auto begun = std::chrono::steady_clock::now();

    // Batched pipelining: claim up to `pipeline` requests, push them
    // down one connection as a single write, then read the responses
    // back in order.  Exercises the daemon's per-connection reply
    // queue and amortizes syscalls on both sides of the wire.
    auto pipelined_worker = [&] {
        // One frame, prebuilt: 4-byte LE length prefix + payload.
        std::string framed;
        const std::uint32_t size =
            static_cast<std::uint32_t>(request_json.size());
        framed.push_back(static_cast<char>(size & 0xff));
        framed.push_back(static_cast<char>((size >> 8) & 0xff));
        framed.push_back(static_cast<char>((size >> 16) & 0xff));
        framed.push_back(static_cast<char>((size >> 24) & 0xff));
        framed.append(request_json);

        util::net::Socket connection;
        for (;;) {
            std::uint64_t batch;
            {
                std::lock_guard<std::mutex> lock(mutex);
                if (next >= options.total)
                    return;
                batch = std::min<std::uint64_t>(options.pipeline,
                                                options.total - next);
                next += batch;
            }
            if (!connection.valid()) {
                auto fresh = connect_endpoint(endpoint);
                if (!fresh) {
                    std::lock_guard<std::mutex> lock(mutex);
                    report.sent += batch;
                    report.other_errors += batch;
                    continue;
                }
                connection = fresh.take();
            }
            std::string wire;
            wire.reserve(framed.size() * batch);
            for (std::uint64_t i = 0; i < batch; ++i)
                wire.append(framed);
            const auto sent_at = std::chrono::steady_clock::now();
            if (util::Status pushed = util::net::send_all(
                    connection, wire.data(), wire.size());
                !pushed.ok()) {
                connection.close();
                std::lock_guard<std::mutex> lock(mutex);
                report.sent += batch;
                report.other_errors += batch;
                continue;
            }
            for (std::uint64_t i = 0; i < batch; ++i) {
                auto frame = recv_frame(connection, options.max_frame);
                const double ms =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - sent_at)
                        .count();
                std::lock_guard<std::mutex> lock(mutex);
                ++report.sent;
                report.latency_ms.add(ms);
                if (!frame) {
                    // The rest of the batch is gone with the stream.
                    report.other_errors += batch - i;
                    report.sent += batch - i - 1;
                    connection.close();
                    break;
                }
                const std::uint64_t digest = util::fnv1a(
                    frame.value().data(), frame.value().size());
                const BodyClass &body =
                    classify(digest, frame.value());
                if (body.ok) {
                    ++report.ok;
                    response_digests.insert(digest);
                } else if (body.kind == util::ErrorKind::Overloaded) {
                    ++report.overloaded;
                } else if (body.kind ==
                           util::ErrorKind::ShuttingDown) {
                    ++report.shutting_down;
                } else {
                    ++report.other_errors;
                }
            }
        }
    };

    auto worker = [&] {
        util::net::Socket persistent;
        for (;;) {
            std::uint64_t k;
            {
                std::lock_guard<std::mutex> lock(mutex);
                if (next >= options.total)
                    return;
                k = next++;
            }
            if (options.open_loop_rps > 0.0) {
                // Open loop: request k is due at begun + k/rate, no
                // matter how the server is doing.
                const auto due =
                    begun + std::chrono::duration_cast<
                                std::chrono::steady_clock::duration>(
                                std::chrono::duration<double>(
                                    static_cast<double>(k) /
                                    options.open_loop_rps));
                std::this_thread::sleep_until(due);
            }
            const auto sent_at = std::chrono::steady_clock::now();
            std::string raw;
            util::Expected<util::JsonValue> response =
                util::Status(util::ErrorKind::IoError, "not sent");
            if (options.persistent) {
                if (!persistent.valid()) {
                    if (auto fresh = connect_endpoint(endpoint))
                        persistent = fresh.take();
                }
                if (persistent.valid()) {
                    response = call(persistent, request_json,
                                    options.max_frame, &raw);
                    if (!response)
                        persistent.close(); // reconnect next round
                } else {
                    response = util::Status(
                        util::ErrorKind::IoError,
                        "cannot connect to the daemon");
                }
            } else {
                response = call_endpoint(endpoint, request_json,
                                         options.max_frame, &raw);
            }
            const double ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - sent_at)
                    .count();

            std::lock_guard<std::mutex> lock(mutex);
            ++report.sent;
            report.latency_ms.add(ms);
            if (!response) {
                switch (response.status().kind()) {
                  case util::ErrorKind::Overloaded:
                    ++report.overloaded;
                    break;
                  case util::ErrorKind::ShuttingDown:
                    ++report.shutting_down;
                    break;
                  default:
                    ++report.other_errors;
                }
                continue;
            }
            ++report.ok;
            const util::JsonValue &body = response.value();
            if (const util::JsonValue *fp =
                    body.find("request_fingerprint");
                fp != nullptr && fp->is_string())
                fingerprints.insert(fp->string_value());
            response_digests.insert(
                util::fnv1a(raw.data(), raw.size()));
        }
    };

    std::vector<std::thread> threads;
    const unsigned workers =
        options.concurrency == 0 ? 1 : options.concurrency;
    const bool pipelined = options.persistent &&
                           options.pipeline > 1 &&
                           options.open_loop_rps <= 0.0;
    threads.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
        if (pipelined)
            threads.emplace_back(pipelined_worker);
        else
            threads.emplace_back(worker);
    }
    for (std::thread &thread : threads)
        thread.join();

    report.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      begun)
            .count();
    report.distinct_fingerprints = fingerprints.size();
    report.distinct_responses = response_digests.size();
    return report;
}

LoadReport
run_load(const Endpoint &endpoint, const RunRequest &request,
         std::uint64_t total, unsigned concurrency,
         std::size_t max_frame)
{
    LoadOptions options;
    options.total = total;
    options.concurrency = concurrency;
    options.max_frame = max_frame;
    return run_load(endpoint, request, options);
}

} // namespace leakbound::serve
