/**
 * @file
 * PC-indexed stride predictor (Farkas et al. [3], as used by the
 * paper, Section 5.1): per static load, a miss/access is considered
 * stride-covered once the same stride has been observed at least
 * twice and the current address extends the run.
 *
 * Modeled as a direct-mapped hardware table with PC tags (capacity
 * collisions behave like the real structure), plus an "ideal"
 * unbounded mode for limit studies.
 */

#ifndef LEAKBOUND_PREFETCH_STRIDE_HPP
#define LEAKBOUND_PREFETCH_STRIDE_HPP

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace leakbound::prefetch {

/** Configuration of the stride table. */
struct StrideConfig
{
    std::uint32_t table_entries = 4096; ///< power of two; 0 = unbounded
    std::uint32_t confirmations = 2;    ///< strides seen before trusting
};

/**
 * Stride predictor.  access() returns whether the access was covered
 * *before* learning from it (so the prediction is causally honest).
 */
class StridePredictor
{
  public:
    explicit StridePredictor(const StrideConfig &config = StrideConfig{});

    /**
     * Observe a load/store by instruction @p pc to byte address
     * @p addr.  @return true when a twice-confirmed stride predicted
     * an address in the same cache line of @p line_bytes granularity.
     * Header-inline: this is a per-memory-op call on the simulation
     * kernel's hot path.
     */
    bool
    access(Pc pc, Addr addr, std::uint32_t line_bytes = 64)
    {
        ++observed_;
        Entry &e = slot_for(pc);

        bool predicted = false;
        if (e.valid && e.tag == pc) {
            const std::int64_t stride =
                static_cast<std::int64_t>(addr) -
                static_cast<std::int64_t>(e.last_addr);
            // Prediction check happens against the state *before* this
            // access: the predictor would have issued last_addr + stride.
            if (e.confidence >= config_.confirmations &&
                stride == e.stride) {
                const Addr predicted_addr = static_cast<Addr>(
                    static_cast<std::int64_t>(e.last_addr) + e.stride);
                predicted =
                    (predicted_addr / line_bytes) == (addr / line_bytes);
            }
            // Learn.
            if (stride == e.stride) {
                if (e.confidence < ~0u)
                    ++e.confidence;
            } else {
                e.stride = stride;
                e.confidence = 1;
            }
            e.last_addr = addr;
        } else {
            // Cold or conflicting entry: claim it.
            e.valid = true;
            e.tag = pc;
            e.last_addr = addr;
            e.stride = 0;
            e.confidence = 0;
        }

        if (predicted)
            ++covered_;
        return predicted;
    }

    /** Covered accesses so far. */
    std::uint64_t covered() const { return covered_; }

    /** Total accesses so far. */
    std::uint64_t observed() const { return observed_; }

    /** Forget everything. */
    void reset();

    /**
     * Append the raw table (tags, last addresses, strides, confidence)
     * to @p out for the analytic state signature.  The table holds no
     * timestamps, so no age translation or warp is needed; the
     * covered()/observed() counters are excluded (reporting only).
     */
    void append_state(std::vector<std::uint64_t> &out) const;

  private:
    struct Entry
    {
        Pc tag = 0;
        Addr last_addr = 0;
        std::int64_t stride = 0;
        std::uint32_t confidence = 0;
        bool valid = false;
    };

    Entry &
    slot_for(Pc pc)
    {
        if (config_.table_entries != 0) {
            return table_[(pc >> 2) & (config_.table_entries - 1)];
        }
        // Unbounded: linear search (test/limit-study use only).
        for (auto &e : table_) {
            if (e.valid && e.tag == pc)
                return e;
        }
        table_.emplace_back();
        return table_.back();
    }

    StrideConfig config_;
    std::vector<Entry> table_;
    std::uint64_t covered_ = 0;
    std::uint64_t observed_ = 0;
};

} // namespace leakbound::prefetch

#endif // LEAKBOUND_PREFETCH_STRIDE_HPP
