/**
 * @file
 * Fleet supervision tests: fork+exec the real `leakboundd` binary in
 * --shards mode and exercise the supervisor from outside — SIGKILL a
 * shard and watch it come back, provoke the crash-loop breaker, pull
 * load through a shard loss, and (in chaos builds) let the kill_shard
 * seam do the killing.
 *
 * These tests manage real child processes, so they live outside
 * test_serve.cpp (which stays fork-free for TSan).  The daemon binary
 * comes from the LEAKBOUNDD environment variable, wired up by CTest;
 * tests skip when it is unset so the bare binary still runs clean.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "util/binary_io.hpp"
#include "util/fault_injection.hpp"
#include "util/json.hpp"

using namespace leakbound;

namespace {

using Clock = std::chrono::steady_clock;

const char *
daemon_binary()
{
    return std::getenv("LEAKBOUNDD");
}

serve::RunRequest
small_request()
{
    serve::RunRequest request;
    request.benchmarks = {"gzip"};
    request.instructions = 20'000;
    return request;
}

/**
 * One supervised leakboundd process: spawned with --shards, reached
 * through its control endpoint, killed and reaped on teardown.
 */
class FleetDaemon
{
  public:
    FleetDaemon(const std::string &name, unsigned shards,
                std::vector<std::string> extra_args,
                std::vector<std::pair<std::string, std::string>>
                    extra_env = {})
        : shards_(shards)
    {
        socket_path_ = "/tmp/lbf_" + name + ".sock";
        cache_dir_ = "/tmp/lbf_" + name + "_cache";
        log_path_ = "/tmp/lbf_" + name + ".log";
        ::mkdir(cache_dir_.c_str(), 0755);
        // Stale sockets from a previous crashed run would fail bind.
        std::remove(socket_path_.c_str());
        for (unsigned i = 0; i < shards; ++i)
            std::remove(
                (socket_path_ + "." + std::to_string(i)).c_str());

        std::vector<std::string> args = {
            daemon_binary(),
            "--socket", socket_path_,
            "--cache-dir", cache_dir_,
            "--shards", std::to_string(shards),
            "--workers", "1",
            "--queue-limit", "64",
        };
        for (std::string &arg : extra_args)
            args.push_back(std::move(arg));

        std::fflush(stdout);
        std::fflush(stderr);
        pid_ = ::fork();
        if (pid_ == 0) {
            const int log = ::open(log_path_.c_str(),
                                   O_CREAT | O_TRUNC | O_WRONLY, 0644);
            if (log >= 0) {
                ::dup2(log, STDOUT_FILENO);
                ::dup2(log, STDERR_FILENO);
                ::close(log);
            }
            for (const auto &[key, value] : extra_env)
                ::setenv(key.c_str(), value.c_str(), 1);
            std::vector<char *> argv;
            argv.reserve(args.size() + 1);
            for (std::string &arg : args)
                argv.push_back(arg.data());
            argv.push_back(nullptr);
            ::execv(argv[0], argv.data());
            ::_exit(127);
        }
    }

    ~FleetDaemon()
    {
        if (pid_ > 0 && !reaped_) {
            ::kill(pid_, SIGKILL);
            (void)::waitpid(pid_, nullptr, 0);
        }
        // A SIGKILLed supervisor leaves its children orphaned; sweep
        // any shard still bound to our sockets so the next test's
        // bind does not collide.  SIGTERMed shards exit on their own.
        std::remove(socket_path_.c_str());
        for (unsigned i = 0; i < shards_; ++i)
            std::remove(
                (socket_path_ + "." + std::to_string(i)).c_str());
    }

    serve::Endpoint control() const
    {
        serve::Endpoint endpoint;
        endpoint.unix_path = socket_path_;
        return endpoint;
    }

    std::vector<serve::Endpoint> fleet() const
    {
        return serve::fleet_endpoints(control(), shards_);
    }

    const std::string &cache_dir() const { return cache_dir_; }

    /** Wait until the control endpoint answers ping (or give up). */
    bool wait_ready(int deadline_ms = 15'000)
    {
        const auto deadline =
            Clock::now() + std::chrono::milliseconds(deadline_ms);
        while (Clock::now() < deadline) {
            if (exited(0))
                return false; // died during startup
            auto response = serve::call_endpoint(
                control(), serve::build_ping_request(),
                serve::kDefaultMaxFrameBytes, nullptr);
            if (response)
                return true;
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        return false;
    }

    /** The supervisor's /health document, or a non-ok status. */
    util::Expected<util::JsonValue> health()
    {
        return serve::call_endpoint(control(),
                                    serve::build_health_request(),
                                    serve::kDefaultMaxFrameBytes,
                                    nullptr);
    }

    /** The pid of shard @p index if it is running, else -1. */
    pid_t running_shard_pid(unsigned index)
    {
        auto document = health();
        if (!document)
            return -1;
        const util::JsonValue *details =
            document.value().find("shard_details");
        if (details == nullptr || !details->is_array() ||
            details->array().size() <= index)
            return -1;
        const util::JsonValue &shard = details->array()[index];
        const util::JsonValue *state = shard.find("state");
        const util::JsonValue *pid = shard.find("pid");
        if (state == nullptr || pid == nullptr ||
            state->string_value() != "running")
            return -1;
        return static_cast<pid_t>(pid->number_value());
    }

    std::uint64_t restarts_total()
    {
        auto document = health();
        if (!document)
            return 0;
        const util::JsonValue *restarts =
            document.value().find("restarts_total");
        return restarts != nullptr && restarts->is_u64()
                   ? restarts->u64_value()
                   : 0;
    }

    /** Non-blocking check; remembers the exit status once seen. */
    bool exited(int poll_ms)
    {
        if (reaped_)
            return true;
        const auto deadline =
            Clock::now() + std::chrono::milliseconds(poll_ms);
        for (;;) {
            int wait_status = 0;
            const pid_t pid = ::waitpid(pid_, &wait_status, WNOHANG);
            if (pid == pid_) {
                exit_status_ = wait_status;
                reaped_ = true;
                return true;
            }
            if (Clock::now() >= deadline)
                return false;
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
    }

    /** SIGTERM the supervisor and wait for a clean drain. */
    int terminate(int deadline_ms = 20'000)
    {
        if (!reaped_)
            ::kill(pid_, SIGTERM);
        if (!exited(deadline_ms))
            return -1;
        return exit_status_;
    }

    std::string log_text() const
    {
        std::string text;
        (void)util::read_file_bytes(log_path_, text);
        return text;
    }

  private:
    unsigned shards_ = 0;
    pid_t pid_ = -1;
    bool reaped_ = false;
    int exit_status_ = -1;
    std::string socket_path_;
    std::string cache_dir_;
    std::string log_path_;
};

} // namespace

TEST(Fleet, SupervisorRestartsASigkilledShard)
{
    if (daemon_binary() == nullptr)
        GTEST_SKIP() << "LEAKBOUNDD not set (run under CTest)";
    FleetDaemon daemon("restart", 2,
                       {"--restart-backoff-ms", "50",
                        "--restart-backoff-cap-ms", "400",
                        "--health-interval-ms", "200"});
    ASSERT_TRUE(daemon.wait_ready()) << daemon.log_text();

    const pid_t first = daemon.running_shard_pid(0);
    ASSERT_GT(first, 0) << daemon.log_text();
    ASSERT_EQ(::kill(first, SIGKILL), 0);

    // The supervisor must reap the corpse and respawn shard 0 within
    // its (tiny) backoff; a fresh pid plus a bumped restart counter is
    // the proof.
    const auto deadline = Clock::now() + std::chrono::seconds(10);
    pid_t second = -1;
    while (Clock::now() < deadline) {
        second = daemon.running_shard_pid(0);
        if (second > 0 && second != first &&
            daemon.restarts_total() >= 1)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    EXPECT_GT(second, 0) << daemon.log_text();
    EXPECT_NE(second, first);
    EXPECT_GE(daemon.restarts_total(), 1u);

    // The revived fleet still answers run requests end to end.
    std::uint64_t failovers = 0;
    auto response = serve::call_fleet(
        daemon.fleet(), small_request(), serve::FailoverPolicy{},
        serve::kDefaultMaxFrameBytes, nullptr, &failovers);
    EXPECT_TRUE(response.has_value())
        << response.status().to_string() << "\n"
        << daemon.log_text();

    const int status = daemon.terminate();
    ASSERT_TRUE(WIFEXITED(status)) << daemon.log_text();
    EXPECT_EQ(WEXITSTATUS(status), 0) << daemon.log_text();
}

TEST(Fleet, CrashLoopBreakerTripsWithTypedReport)
{
    if (daemon_binary() == nullptr)
        GTEST_SKIP() << "LEAKBOUNDD not set (run under CTest)";
    // Two deaths tolerated inside a wide window, near-zero backoff:
    // the third SIGKILL must trip the breaker and take the whole
    // supervisor down with the typed incident report.
    FleetDaemon daemon("crashloop", 1,
                       {"--restart-limit", "2",
                        "--restart-window-s", "60",
                        "--restart-backoff-ms", "10",
                        "--restart-backoff-cap-ms", "20"});
    ASSERT_TRUE(daemon.wait_ready()) << daemon.log_text();

    const auto deadline = Clock::now() + std::chrono::seconds(20);
    pid_t last_killed = -1;
    while (!daemon.exited(0) && Clock::now() < deadline) {
        const pid_t pid = daemon.running_shard_pid(0);
        if (pid > 0 && pid != last_killed) {
            ::kill(pid, SIGKILL);
            last_killed = pid;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ASSERT_TRUE(daemon.exited(2'000)) << daemon.log_text();

    const int status = daemon.terminate();
    ASSERT_TRUE(WIFEXITED(status)) << daemon.log_text();
    EXPECT_NE(WEXITSTATUS(status), 0);
    const std::string log = daemon.log_text();
    EXPECT_NE(log.find("crash_loop"), std::string::npos) << log;
    EXPECT_NE(log.find("crash-loop breaker tripped"),
              std::string::npos)
        << log;
}

TEST(Fleet, LoadFailsOverWithByteIdenticalWarmResponses)
{
    if (daemon_binary() == nullptr)
        GTEST_SKIP() << "LEAKBOUNDD not set (run under CTest)";
    const serve::RunRequest request = small_request();
    // Hermetic cold start: a cache left by a previous run would hide
    // cold-path differences between the reference and failover fleets.
    std::system("rm -rf /tmp/lbf_digest_cache");

    // First fleet's only job is to populate the shared artifact cache
    // (the cold simulation renders from_cache:false, which would never
    // byte-match a warm fleet's responses).
    {
        FleetDaemon daemon("digest", 2, {});
        ASSERT_TRUE(daemon.wait_ready()) << daemon.log_text();
        std::uint64_t failovers = 0;
        auto seeded = serve::call_fleet(
            daemon.fleet(), request, serve::FailoverPolicy{},
            serve::kDefaultMaxFrameBytes, nullptr, &failovers);
        ASSERT_TRUE(seeded.has_value())
            << seeded.status().to_string();
        EXPECT_EQ(daemon.terminate(), 0) << daemon.log_text();
    }

    // Warm fleet over the seeded cache: record the uninterrupted
    // response bytes, then pull a load through while one shard is
    // SIGKILLed mid-flight.  Failover must absorb the loss — every
    // request answered ok, one distinct response body — and the final
    // bytes must match the uninterrupted reference exactly.
    FleetDaemon daemon("digest", 2,
                       {"--restart-backoff-ms", "50",
                        "--restart-backoff-cap-ms", "400"});
    ASSERT_TRUE(daemon.wait_ready()) << daemon.log_text();
    std::string reference;
    for (const serve::Endpoint &shard : daemon.fleet()) {
        std::string raw;
        auto warmed = serve::call_endpoint(
            shard, serve::build_run_request(request),
            serve::kDefaultMaxFrameBytes, &raw);
        ASSERT_TRUE(warmed.has_value()) << warmed.status().to_string();
        if (reference.empty())
            reference = raw;
        else
            EXPECT_EQ(raw, reference)
                << "warm shards disagree before any failure";
    }

    std::thread killer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        for (unsigned index = 0; index < 2; ++index) {
            const pid_t pid = daemon.running_shard_pid(index);
            if (pid > 0) {
                ::kill(pid, SIGKILL);
                return;
            }
        }
    });
    serve::LoadOptions options;
    options.total = 400;
    options.concurrency = 4;
    options.fleet = daemon.fleet();
    const serve::LoadReport report =
        serve::run_load(daemon.control(), request, options);
    killer.join();

    EXPECT_EQ(report.sent, options.total);
    EXPECT_EQ(report.ok, report.sent) << daemon.log_text();
    EXPECT_EQ(report.distinct_responses, 1u);

    std::string raw;
    std::uint64_t failovers = 0;
    auto response = serve::call_fleet(
        daemon.fleet(), request, serve::FailoverPolicy{},
        serve::kDefaultMaxFrameBytes, &raw, &failovers);
    ASSERT_TRUE(response.has_value()) << response.status().to_string();
    EXPECT_EQ(raw, reference);

    EXPECT_EQ(daemon.terminate(), 0) << daemon.log_text();
}

TEST(Fleet, ChaosKillShardSeamRestartsUnderLoad)
{
    if (daemon_binary() == nullptr)
        GTEST_SKIP() << "LEAKBOUNDD not set (run under CTest)";
    if (!util::fault::kEnabled)
        GTEST_SKIP() << "fault injection compiled out (release build)";
    const serve::RunRequest request = small_request();
    // Hermetic cold start, then seed the artifact cache chaos-free:
    // a shard's response LRU pins its *first* render, and a cold
    // simulation renders from_cache:false bytes that a chaos-respawned
    // shard (which loads from the cache) would never byte-match.
    std::system("rm -rf /tmp/lbf_chaos_cache");
    {
        FleetDaemon seeder("chaos", 1, {});
        ASSERT_TRUE(seeder.wait_ready()) << seeder.log_text();
        std::uint64_t seed_failovers = 0;
        auto seeded = serve::call_fleet(
            seeder.fleet(), request, serve::FailoverPolicy{},
            serve::kDefaultMaxFrameBytes, nullptr, &seed_failovers);
        ASSERT_TRUE(seeded.has_value())
            << seeded.status().to_string();
        EXPECT_EQ(seeder.terminate(), 0) << seeder.log_text();
    }

    // The supervisor's own chaos probe fires roughly every second at
    // this rate (one roll per 50 ms tick), SIGKILLing a random live
    // shard while the client load runs.
    FleetDaemon daemon(
        "chaos", 2,
        {"--restart-backoff-ms", "20",
         "--restart-backoff-cap-ms", "100",
         "--restart-limit", "50", "--restart-window-s", "60"},
        {{"LEAKBOUND_FAULT_INJECTION", "kill_shard=0.05"}});
    ASSERT_TRUE(daemon.wait_ready()) << daemon.log_text();
    // Direct per-shard warm-ups have no failover, and the chaos probe
    // is already armed — retry through any kill that lands mid-call.
    for (const serve::Endpoint &shard : daemon.fleet()) {
        bool warmed_ok = false;
        for (int attempt = 0; attempt < 100 && !warmed_ok; ++attempt) {
            auto warmed = serve::call_endpoint(
                shard, serve::build_run_request(request),
                serve::kDefaultMaxFrameBytes, nullptr);
            if (warmed.has_value())
                warmed_ok = true;
            else
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(50));
        }
        ASSERT_TRUE(warmed_ok) << daemon.log_text();
    }

    std::string reference;
    std::uint64_t failovers = 0;
    auto baseline = serve::call_fleet(
        daemon.fleet(), request, serve::FailoverPolicy{},
        serve::kDefaultMaxFrameBytes, &reference, &failovers);
    ASSERT_TRUE(baseline.has_value())
        << baseline.status().to_string();

    serve::LoadOptions options;
    options.total = 200;
    options.concurrency = 4;
    options.fleet = daemon.fleet();
    const serve::LoadReport report =
        serve::run_load(daemon.control(), request, options);
    EXPECT_EQ(report.ok, report.sent) << daemon.log_text();
    EXPECT_EQ(report.distinct_responses, 1u);

    // Keep the fleet alive until the seam has provably fired and the
    // supervisor has provably recovered from it.
    const auto deadline = Clock::now() + std::chrono::seconds(30);
    while (daemon.restarts_total() < 1 && Clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_GE(daemon.restarts_total(), 1u) << daemon.log_text();

    std::string raw;
    auto after = serve::call_fleet(
        daemon.fleet(), request, serve::FailoverPolicy{},
        serve::kDefaultMaxFrameBytes, &raw, &failovers);
    ASSERT_TRUE(after.has_value()) << after.status().to_string();
    EXPECT_EQ(raw, reference);

    // Chaos may SIGKILL a shard in the window between the last health
    // check and the drain, so the exit code is allowed to report a
    // dirty drain; what matters is that the supervisor exits at all.
    const int status = daemon.terminate();
    ASSERT_TRUE(WIFEXITED(status)) << daemon.log_text();
}

TEST(Fleet, AggregatedStatsMergeShardCountersAndFleetBlock)
{
    if (daemon_binary() == nullptr)
        GTEST_SKIP() << "LEAKBOUNDD not set (run under CTest)";
    FleetDaemon daemon("stats", 2, {});
    ASSERT_TRUE(daemon.wait_ready()) << daemon.log_text();

    // Two distinct requests so the two home shards both serve work.
    serve::RunRequest first = small_request();
    serve::RunRequest second = small_request();
    second.instructions = 30'000;
    for (const serve::RunRequest &request : {first, second}) {
        std::uint64_t failovers = 0;
        auto response = serve::call_fleet(
            daemon.fleet(), request, serve::FailoverPolicy{},
            serve::kDefaultMaxFrameBytes, nullptr, &failovers);
        ASSERT_TRUE(response.has_value())
            << response.status().to_string();
    }

    auto stats = serve::call_endpoint(daemon.control(),
                                      serve::build_stats_request(),
                                      serve::kDefaultMaxFrameBytes,
                                      nullptr);
    ASSERT_TRUE(stats.has_value()) << stats.status().to_string();
    const util::JsonValue *served =
        stats.value().find("requests_served");
    ASSERT_NE(served, nullptr);
    EXPECT_GE(served->u64_value(), 2u);
    const util::JsonValue *fleet = stats.value().find("fleet");
    ASSERT_NE(fleet, nullptr);
    ASSERT_TRUE(fleet->is_object());
    const util::JsonValue *shards = fleet->find("shards");
    ASSERT_NE(shards, nullptr);
    EXPECT_EQ(shards->u64_value(), 2u);
    const util::JsonValue *answered = fleet->find("shards_answered");
    ASSERT_NE(answered, nullptr);
    EXPECT_EQ(answered->u64_value(), 2u);
    const util::JsonValue *broken = stats.value().find("locks_broken");
    ASSERT_NE(broken, nullptr) << "merged stats lost locks_broken";

    EXPECT_EQ(daemon.terminate(), 0) << daemon.log_text();
}
