/**
 * @file
 * Ablation: the literature policy zoo against the bound.
 *
 * Places the non-oracle schemes the paper discusses in Section 2 —
 * Kaxiras-style cache decay (Sleep(T)) and the Flautner/Kim periodic
 * drowsy cache (Drowsy(W)) — on one axis against the oracle limits,
 * quantifying the paper's motivating observation: realizable policies
 * leave a large gap to the bound, and no tuning closes it.
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace leakbound;
    using namespace leakbound::bench;

    auto cli = make_cli("ablation_policy_zoo",
                        "ablation: literature policies vs the bound");
    cli.parse(argc, argv);

    const auto runs = run_standard_suite(cli);
    const core::EnergyModel model(
        power::node_params(power::TechNode::Nm70));

    util::Table table("policy zoo at 70nm (suite average)");
    table.set_header({"policy", "oracle?", "I-cache", "D-cache"});
    auto add = [&](const core::PolicyPtr &p) {
        table.add_row(
            {p->name(), p->is_oracle() ? "yes" : "no",
             pct(suite_average(*p, runs, CacheSide::Instruction).savings),
             pct(suite_average(*p, runs, CacheSide::Data).savings)});
    };

    add(core::make_always_active(model));
    // Periodic drowsy at the windows Flautner et al. explored.
    add(core::make_periodic_drowsy(model, 2000));
    add(core::make_periodic_drowsy(model, 4000));
    add(core::make_periodic_drowsy(model, 32000));
    // Cache decay at its usual settings.
    add(core::make_decay_sleep(model, 8000));
    add(core::make_decay_sleep(model, 10'000));
    add(core::make_decay_sleep(model, 64'000));
    table.add_separator();
    // The oracle ladder.
    add(core::make_opt_drowsy(model));
    add(core::make_opt_sleep(model, 1057));
    add(core::make_opt_hybrid(model));
    emit(table, cli, "policy_zoo");

    std::printf(
        "periodic drowsy caps out near the drowsy asymptote (66.7%%)\n"
        "minus its boundary-wait losses; decay trades induced misses\n"
        "for sleep time; only the oracle hybrid reaches the bound —\n"
        "the headroom the paper quantifies.\n");
    return 0;
}
