# Empty compiler generated dependencies file for test_generalized_model.
# This may be replaced when dependencies are built.
