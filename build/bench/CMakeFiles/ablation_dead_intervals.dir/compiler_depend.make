# Empty compiler generated dependencies file for ablation_dead_intervals.
# This may be replaced when dependencies are built.
