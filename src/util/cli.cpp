/**
 * @file
 * Implementation of the command-line flag parser.
 */

#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/logging.hpp"
#include "util/string_utils.hpp"

namespace leakbound::util {

Cli::Cli(std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
}

void
Cli::add_flag(const std::string &name, const std::string &desc,
              const std::string &default_value)
{
    Flag flag;
    flag.desc = desc;
    flag.default_value = default_value;
    flag.value = default_value;
    flags_[name] = std::move(flag);
}

void
Cli::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage().c_str(), stdout);
            std::exit(0);
        }
        if (!starts_with(arg, "--"))
            fatal("unexpected positional argument: ", arg);
        arg = arg.substr(2);
        std::string key;
        std::string value;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            key = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        } else {
            key = arg;
            auto it = flags_.find(key);
            if (it == flags_.end())
                fatal("unknown flag --", key, "\n", usage());
            // `--flag value` form, unless the next token is another flag
            // or this is the last token (then treat as boolean true).
            if (i + 1 < argc && !starts_with(argv[i + 1], "--"))
                value = argv[++i];
            else
                value = "true";
        }
        auto it = flags_.find(key);
        if (it == flags_.end())
            fatal("unknown flag --", key, "\n", usage());
        it->second.value = value;
        it->second.set = true;
    }
}

const Cli::Flag &
Cli::lookup(const std::string &name) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        LEAKBOUND_PANIC("flag not registered: ", name);
    return it->second;
}

std::string
Cli::get(const std::string &name) const
{
    return lookup(name).value;
}

std::uint64_t
Cli::get_u64(const std::string &name) const
{
    const std::string &v = lookup(name).value;
    char *end = nullptr;
    const std::uint64_t out = std::strtoull(v.c_str(), &end, 0);
    if (end == v.c_str() || *end != '\0')
        fatal("flag --", name, " expects an unsigned integer, got '", v,
              "'");
    return out;
}

double
Cli::get_double(const std::string &name) const
{
    const std::string &v = lookup(name).value;
    char *end = nullptr;
    const double out = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0')
        fatal("flag --", name, " expects a number, got '", v, "'");
    return out;
}

bool
Cli::get_bool(const std::string &name) const
{
    const std::string v = to_lower(lookup(name).value);
    return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::vector<std::pair<std::string, std::string>>
Cli::snapshot() const
{
    std::vector<std::pair<std::string, std::string>> out;
    out.reserve(flags_.size());
    for (const auto &[key, flag] : flags_)
        out.emplace_back(key, flag.value);
    return out;
}

std::string
Cli::usage() const
{
    std::ostringstream os;
    os << name_ << " - " << desc_ << "\n\nflags:\n";
    for (const auto &[key, flag] : flags_) {
        os << "  --" << key << " (default: " << flag.default_value
           << ")\n      " << flag.desc << '\n';
    }
    return os.str();
}

} // namespace leakbound::util
