/**
 * @file
 * Tests of the interval collector: full timeline partitioning
 * (leading/inner/trailing/untouched), the frame-time conservation
 * invariant, prefetch-class precedence, reuse flags and misuse
 * detection.
 */

#include <gtest/gtest.h>

#include "interval/collector.hpp"
#include "interval/interval_histogram.hpp"

using namespace leakbound;
using namespace leakbound::interval;

namespace {

IntervalHistogramSet
make_set()
{
    return IntervalHistogramSet::with_default_edges();
}

} // namespace

TEST(Collector, PartitionsOneFrameTimeline)
{
    auto set = make_set();
    IntervalCollector c(1, &set, /*keep_raw=*/true);
    c.on_access(0, 100, false, false, false); // leading [0,100)
    c.on_access(0, 250, true, false, false);  // inner 150
    c.on_access(0, 260, true, false, false);  // inner 10
    c.finalize(1000);                         // trailing 740

    const auto &raw = c.raw();
    ASSERT_EQ(raw.size(), 4u);
    EXPECT_EQ(raw[0].kind, IntervalKind::Leading);
    EXPECT_EQ(raw[0].length, 100u);
    EXPECT_EQ(raw[1].kind, IntervalKind::Inner);
    EXPECT_EQ(raw[1].length, 150u);
    EXPECT_EQ(raw[2].kind, IntervalKind::Inner);
    EXPECT_EQ(raw[2].length, 10u);
    EXPECT_EQ(raw[3].kind, IntervalKind::Trailing);
    EXPECT_EQ(raw[3].length, 740u);
}

TEST(Collector, FrameTimeConservation)
{
    // Invariant: per-frame interval lengths sum to the run length, so
    // total interval time == frames * cycles == baseline energy.
    auto set = make_set();
    const std::uint64_t frames = 8;
    IntervalCollector c(frames, &set);
    // A scatter of accesses across frames (frame, cycle).
    const std::pair<FrameId, Cycle> accesses[] = {
        {0, 5},  {1, 7},   {0, 9},   {3, 100}, {3, 101},
        {1, 80}, {0, 900}, {5, 333}, {3, 999},
    };
    for (auto [frame, cycle] : accesses)
        c.on_access(frame, cycle, true, false, false);
    c.finalize(1000);

    EXPECT_EQ(set.total_length(), frames * 1000u);
    EXPECT_DOUBLE_EQ(set.baseline_energy(),
                     static_cast<double>(frames) * 1000.0);
    EXPECT_EQ(set.num_frames(), frames);
    EXPECT_EQ(set.total_cycles(), 1000u);
}

TEST(Collector, UntouchedFramesEmitFullRunIntervals)
{
    auto set = make_set();
    IntervalCollector c(4, &set, true);
    c.on_access(1, 10, false, false, false);
    c.finalize(500);
    std::uint64_t untouched = 0;
    for (const auto &iv : c.raw()) {
        if (iv.kind == IntervalKind::Untouched) {
            ++untouched;
            EXPECT_EQ(iv.length, 500u);
        }
    }
    EXPECT_EQ(untouched, 3u);
}

TEST(Collector, PrefetchClassPrecedence)
{
    auto set = make_set();
    IntervalCollector c(1, &set, true);
    c.on_access(0, 0, false, false, false);
    // Next-line wins even when stride also covered the access.
    c.on_access(0, 100, true, /*stride=*/true, /*nl=*/true);
    // Stride alone.
    c.on_access(0, 200, true, true, false);
    // Neither.
    c.on_access(0, 300, true, false, false);
    c.finalize(400);

    const auto &raw = c.raw();
    EXPECT_EQ(raw[1].pf, PrefetchClass::NextLine);
    EXPECT_EQ(raw[2].pf, PrefetchClass::Stride);
    EXPECT_EQ(raw[3].pf, PrefetchClass::NonPrefetchable);
}

TEST(Collector, LeadingIntervalsIgnorePrefetchFlags)
{
    auto set = make_set();
    IntervalCollector c(1, &set, true);
    c.on_access(0, 50, true, true, true); // first touch
    c.finalize(100);
    EXPECT_EQ(c.raw()[0].kind, IntervalKind::Leading);
    EXPECT_EQ(c.raw()[0].pf, PrefetchClass::NonPrefetchable);
    EXPECT_FALSE(c.raw()[0].ends_in_reuse);
}

TEST(Collector, ReuseFlagRecorded)
{
    auto set = make_set();
    IntervalCollector c(1, &set, true);
    c.on_access(0, 0, false, false, false);
    c.on_access(0, 10, true, false, false);  // hit: reuse
    c.on_access(0, 20, false, false, false); // replacement fill
    c.finalize(30);
    EXPECT_TRUE(c.raw()[1].ends_in_reuse);
    EXPECT_FALSE(c.raw()[2].ends_in_reuse);
}

TEST(Collector, OpenSinceTracksLastAccess)
{
    auto set = make_set();
    IntervalCollector c(2, &set);
    Cycle since = 123;
    EXPECT_FALSE(c.open_since(0, since));
    c.on_access(0, 77, false, false, false);
    ASSERT_TRUE(c.open_since(0, since));
    EXPECT_EQ(since, 77u);
    c.on_access(0, 200, true, false, false);
    ASSERT_TRUE(c.open_since(0, since));
    EXPECT_EQ(since, 200u);
    EXPECT_FALSE(c.open_since(1, since));
}

TEST(Collector, ZeroLengthIntervalsAllowed)
{
    // Two accesses in the same cycle (4-wide fetch of one line) make a
    // zero-length inner interval; it must land in the [0,1) bin.
    auto set = make_set();
    IntervalCollector c(1, &set, true);
    c.on_access(0, 10, false, false, false);
    c.on_access(0, 10, true, false, false);
    c.finalize(20);
    EXPECT_EQ(c.raw()[1].length, 0u);
}

TEST(CollectorDeath, OutOfOrderAccessPanics)
{
    auto set = make_set();
    IntervalCollector c(1, &set);
    c.on_access(0, 100, false, false, false);
    EXPECT_DEATH(c.on_access(0, 50, true, false, false), "time-ordered");
}

TEST(CollectorDeath, AccessAfterFinalizePanics)
{
    auto set = make_set();
    IntervalCollector c(1, &set);
    c.finalize(10);
    EXPECT_DEATH(c.on_access(0, 20, false, false, false), "finalize");
}

TEST(CollectorDeath, DoubleFinalizePanics)
{
    auto set = make_set();
    IntervalCollector c(1, &set);
    c.finalize(10);
    EXPECT_DEATH(c.finalize(20), "twice");
}

TEST(CollectorDeath, BadFramePanics)
{
    auto set = make_set();
    IntervalCollector c(2, &set);
    EXPECT_DEATH(c.on_access(7, 1, false, false, false), "range");
}
