/**
 * @file
 * Set-associative cache model (block-granular, tag-only).
 *
 * The model tracks residency, replacement and statistics; data values
 * are irrelevant to the leakage study.  Frames are identified by
 * FrameId = set * ways + way, the identifier the interval machinery
 * keys on (leakage is a property of the physical frame, not of the
 * block resident in it).
 *
 * Two implementations of the per-access decision logic coexist (see
 * SimMode in cache_config.hpp): the devirtualized *kernel*, which
 * packs a set's recency order into one 64-bit rank word and inlines
 * the replacement update per ReplacementKind, and the *reference*
 * path, which drives the virtual ReplacementPolicy objects.  They are
 * byte-identical in every observable; debug builds additionally run
 * the policy objects in lockstep with the kernel and assert agreement
 * on every victim.
 */

#ifndef LEAKBOUND_SIM_CACHE_HPP
#define LEAKBOUND_SIM_CACHE_HPP

#include <bit>
#include <memory>
#include <vector>

#include "sim/cache_config.hpp"
#include "sim/replacement.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"
#include "util/types.hpp"

namespace leakbound::sim {

/** Outcome of one cache access. */
struct AccessResult
{
    bool hit = false;          ///< block was resident
    FrameId frame = kInvalidFrame; ///< frame accessed (or filled)
    bool evicted = false;      ///< a valid block was displaced
    Addr victim_block = kInvalidAddr; ///< displaced block number
};

/** Running cache statistics. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;

    /** misses / accesses (0 when idle). */
    double miss_rate() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

/**
 * One cache level.  Accesses are by byte address; allocate-on-miss,
 * no inclusion/exclusion enforcement (the hierarchy composes levels).
 */
class Cache
{
  public:
    /**
     * @param config validated geometry; @param seed for Random repl.
     * @param mode kernel vs reference decision logic (byte-identical;
     *        geometries the kernel cannot pack — more than 8 ways —
     *        silently run the reference logic).
     */
    explicit Cache(const CacheConfig &config, std::uint64_t seed = 1,
                   SimMode mode = SimMode::Kernel);

    /** Access byte address @p addr: hit or allocate. */
    AccessResult
    access(Addr addr)
    {
        if (!kernel_)
            return access_reference(addr);
        switch (config_.replacement) {
          case ReplacementKind::Lru:
            return access_kernel<ReplacementKind::Lru>(addr);
          case ReplacementKind::Fifo:
            return access_kernel<ReplacementKind::Fifo>(addr);
          case ReplacementKind::Random:
            return access_kernel<ReplacementKind::Random>(addr);
        }
        LEAKBOUND_PANIC("unreachable: bad ReplacementKind");
    }

    /**
     * Frame currently holding @p block (a block number, not a byte
     * address); kInvalidFrame when not resident.
     */
    FrameId frame_of_block(Addr block) const;

    /** Block number resident in @p frame; kInvalidAddr when invalid. */
    Addr block_in_frame(FrameId frame) const;

    /**
     * Invalidate the copy of @p block (a block number, not a byte
     * address) held by this cache — the coherence action another
     * requester's store triggers through the directory.  Returns the
     * frame that held the block, or kInvalidFrame when it was not
     * resident.  Replacement state is deliberately left untouched:
     * both decision paths prefer an invalid way over a policy victim,
     * so the kernel rank word and the reference policy objects stay in
     * lockstep without a policy-level invalidate hook.  Statistics are
     * untouched too — an invalidation is not an access by this cache's
     * requester.
     */
    FrameId invalidate_block(Addr block);

    /** Geometry. */
    const CacheConfig &config() const { return config_; }

    /** Physical frame count. */
    std::uint64_t num_frames() const { return config_.num_frames(); }

    /** Statistics so far. */
    const CacheStats &stats() const { return stats_; }

    /** Whether the devirtualized kernel is active for this instance. */
    bool kernel_active() const { return kernel_; }

    /** Invalidate everything and clear statistics. */
    void reset();

    /**
     * Append the cache's decision state (resident tags, validity, and
     * the replacement policy's canonical recency order) to @p out;
     * @return false when the replacement policy is not snapshot-able
     * (Random).  Statistics are excluded — they never influence future
     * behaviour.  Kernel and reference instances append identical
     * bytes for identical histories.
     */
    bool append_state(std::vector<std::uint64_t> &out) const;

  private:
    /** The virtual-policy decision logic (reference/oracle path). */
    AccessResult access_reference(Addr addr);

    /**
     * Recency rank word of one set: byte p holds the way at recency
     * position p (position 0 = next victim, position ways-1 = MRU);
     * bytes at and above `ways` hold the 0xFF filler, which can never
     * equal a way index.  The initial ascending order 0,1,...,ways-1
     * matches the reference tie-break (untouched ways all carry stamp
     * 0 and sort ascending by way).
     */
    static std::uint64_t
    initial_rank(std::uint32_t ways)
    {
        std::uint64_t word = ~std::uint64_t{0};
        for (std::uint32_t w = ways; w-- > 0;)
            word = (word << 8) | w;
        return word;
    }

    /**
     * Move @p way to the MRU position of rank word @p r (@p mru =
     * ways - 1), sliding the ways above its current position down one
     * rank.  The way's position is found with the zero-byte trick: the
     * lowest flagged byte of `(x - 0x01..) & ~x & 0x80..` is exactly
     * the lowest zero byte of x (false positives only occur above it),
     * and every way index appears in the word exactly once.
     */
    static std::uint64_t
    touch_rank(std::uint64_t r, std::uint32_t way, std::uint32_t mru)
    {
        constexpr std::uint64_t kOnes = 0x0101010101010101ULL;
        const std::uint64_t x = r ^ (kOnes * way);
        const std::uint64_t z =
            (x - kOnes) & ~x & 0x8080808080808080ULL;
        const unsigned p = static_cast<unsigned>(std::countr_zero(z)) >> 3;
        if (p >= mru)
            return r; // already MRU (also the whole ways == 1 case)
        // mru <= 7, p <= mru - 1 <= 6: all shifts below stay < 64.
        const std::uint64_t below = (std::uint64_t{1} << (8 * p)) - 1;
        const std::uint64_t upto_mru =
            (std::uint64_t{1} << (8 * mru)) - 1;
        return (r & below)                       // ranks below p
               | ((r >> 8) & (upto_mru & ~below)) // old p+1..mru slide down
               | (static_cast<std::uint64_t>(way) << (8 * mru))
               | (r & ((~std::uint64_t{0} << (8 * mru)) << 8)); // filler
    }

    /** The devirtualized decision logic, specialized per policy. */
    template <ReplacementKind K>
    AccessResult
    access_kernel(Addr addr)
    {
        const Addr block = addr >> line_shift_;

        // Same-block filter: after any access the accessed block is
        // resident and MRU in its set, and nothing touches this cache
        // between two of its own accesses, so a repeat of the previous
        // block is a guaranteed hit to the same frame.  Every policy's
        // hit path leaves the state exactly as the filter does: LRU's
        // touch_rank is a no-op on an already-MRU way, FIFO and Random
        // do nothing on hits.  Fetch groups walk an I-line 4 groups at
        // a time and unit-stride data walks a D-line 8 draws at a time,
        // so this skips most set scans.
        if (block == last_block_) {
            ++stats_.accesses;
            ++stats_.hits;
#ifndef NDEBUG
            repl_->on_hit(
                static_cast<std::uint64_t>(last_frame_) / ways_,
                static_cast<std::uint32_t>(
                    static_cast<std::uint64_t>(last_frame_) % ways_));
#endif
            AccessResult repeat;
            repeat.hit = true;
            repeat.frame = last_frame_;
            return repeat;
        }

        const std::uint64_t set = block & set_mask_;
        const std::uint64_t base = set * ways_;

        ++stats_.accesses;

        AccessResult result;
        std::uint32_t invalid_way = ways_; // sentinel
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (!valid_[base + w]) {
                if (invalid_way == ways_)
                    invalid_way = w;
                continue;
            }
            if (tags_[base + w] == block) {
                if constexpr (K == ReplacementKind::Lru)
                    rank_[set] = touch_rank(rank_[set], w, ways_ - 1);
#ifndef NDEBUG
                repl_->on_hit(set, w); // shadow the oracle in lockstep
#endif
                ++stats_.hits;
                result.hit = true;
                result.frame = static_cast<FrameId>(base + w);
                last_block_ = block;
                last_frame_ = result.frame;
                return result;
            }
        }

        ++stats_.misses;
        std::uint32_t way = invalid_way;
        if (way == ways_) {
            if constexpr (K == ReplacementKind::Random)
                way = static_cast<std::uint32_t>(
                    kernel_rng_.next_below(ways_));
            else
                way = static_cast<std::uint32_t>(rank_[set] & 0xff);
#ifndef NDEBUG
            LEAKBOUND_ASSERT(repl_->victim_way(set) == way,
                             "kernel victim diverged from the reference "
                             "policy in set ", set);
            LEAKBOUND_ASSERT(way < ways_ && valid_[base + way],
                             "kernel picked an invalid victim way ", way);
#endif
            result.evicted = true;
            result.victim_block = tags_[base + way];
            ++stats_.evictions;
        }

        tags_[base + way] = block;
        valid_[base + way] = 1;
        if constexpr (K != ReplacementKind::Random)
            rank_[set] = touch_rank(rank_[set], way, ways_ - 1);
#ifndef NDEBUG
        repl_->on_fill(set, way); // shadow the oracle in lockstep
#endif
        result.frame = static_cast<FrameId>(base + way);
        last_block_ = block;
        last_frame_ = result.frame;
        return result;
    }

    CacheConfig config_;
    // Geometry precomputed once at construction (all geometries are
    // validated powers of two): block = addr >> line_shift_,
    // set = block & set_mask_.
    std::uint32_t ways_ = 1;
    std::uint32_t line_shift_ = 0;
    std::uint64_t set_mask_ = 0;
    // Frame state stored structure-of-arrays: the hit scan touches only
    // the tag array, laid out contiguously per set.
    std::vector<Addr> tags_;          ///< resident block number per frame
    std::vector<std::uint8_t> valid_; ///< validity per frame
    /**
     * The reference policy objects.  In Reference mode (or for
     * geometries the kernel cannot pack) they make every decision; in
     * kernel mode they are the debug-build shadow oracle and are never
     * consulted in release builds.
     */
    std::unique_ptr<ReplacementPolicy> repl_;
    bool kernel_ = false;            ///< kernel decision logic active
    std::vector<std::uint64_t> rank_; ///< per-set rank word (kernel)
    // Same-block filter (kernel path): the previously accessed block
    // and its frame.  Derived state — always the MRU of its set — so
    // it is excluded from append_state() and cleared by reset().
    Addr last_block_ = kInvalidAddr;
    FrameId last_frame_ = kInvalidFrame;
    util::Rng kernel_rng_;           ///< kernel Random draws (lockstep
                                     ///< with RandomPolicy's stream)
    CacheStats stats_;
    std::uint64_t seed_;
};

} // namespace leakbound::sim

#endif // LEAKBOUND_SIM_CACHE_HPP
