# Empty dependencies file for fig8_schemes.
# This may be replaced when dependencies are built.
