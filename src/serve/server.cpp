/**
 * @file
 * Implementation of the leakboundd server: the epoll event loop,
 * per-connection frame state machines, scheduler handoff, and drain.
 */

#include "serve/server.hpp"

#include <algorithm>
#include <cstdio>

#include <unistd.h>

#include "util/interrupt.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"

namespace leakbound::serve {

namespace {

/** Epoll tags below the connection-id floor. */
constexpr std::uint64_t kUnixTag = 1;
constexpr std::uint64_t kTcpTag = 2;
constexpr std::uint64_t kWakeupTag = 3;

/** Compact the inbuf once the parsed prefix crosses this size. */
constexpr std::size_t kInbufCompactThreshold = 64u << 10;

void
append_frame_header(std::string &out, std::size_t size)
{
    out.push_back(static_cast<char>(size & 0xff));
    out.push_back(static_cast<char>((size >> 8) & 0xff));
    out.push_back(static_cast<char>((size >> 16) & 0xff));
    out.push_back(static_cast<char>((size >> 24) & 0xff));
}

} // namespace

Server::Server(ServerConfig config) : config_(std::move(config))
{
    scheduler_ = std::make_unique<Scheduler>(config_.scheduler);
    started_at_ = std::chrono::steady_clock::now();
}

Server::~Server()
{
    // serve() normally runs the full drain; this covers start()-only
    // lifetimes (tests that never serve).
    scheduler_->drain();
    if (!config_.unix_path.empty())
        std::remove(config_.unix_path.c_str());
}

util::Status
Server::start()
{
    if (config_.unix_path.empty() && !config_.listen_tcp) {
        return util::Status(util::ErrorKind::InvalidArgument,
                            "no listener configured: need a socket "
                            "path or a TCP port");
    }
    if (!epoll_.valid())
        return util::Status(util::ErrorKind::IoError,
                            "cannot create the epoll instance");
    if (!wakeup_.valid())
        return util::Status(util::ErrorKind::IoError,
                            "cannot create the wakeup eventfd");
    if (!config_.unix_path.empty()) {
        auto listener = util::net::listen_unix(config_.unix_path);
        if (!listener)
            return listener.status();
        unix_listener_ = listener.take();
        if (util::Status made =
                util::net::set_nonblocking(unix_listener_);
            !made.ok())
            return made;
    }
    if (config_.listen_tcp) {
        auto listener =
            util::net::listen_tcp(config_.tcp_host, config_.tcp_port);
        if (!listener)
            return listener.status();
        tcp_listener_ = listener.take();
        if (util::Status made =
                util::net::set_nonblocking(tcp_listener_);
            !made.ok())
            return made;
        tcp_port_ = util::net::local_port(tcp_listener_);
    }
    started_ = true;
    return util::Status();
}

util::Status
Server::serve()
{
    if (!started_) {
        return util::Status(util::ErrorKind::InvalidArgument,
                            "serve() before start()");
    }

    if (unix_listener_.valid()) {
        if (util::Status added = epoll_.add(unix_listener_.fd(), kUnixTag,
                                            true, false);
            !added.ok())
            return added;
    }
    if (tcp_listener_.valid()) {
        if (util::Status added = epoll_.add(tcp_listener_.fd(), kTcpTag,
                                            true, false);
            !added.ok())
            return added;
    }
    // Level-triggered on purpose: a signal() arriving between consume()
    // and the next wait must re-report, and the loop always consumes.
    if (util::Status added = epoll_.add(wakeup_.fd(), kWakeupTag, true,
                                        false, /*edge_triggered=*/false);
        !added.ok())
        return added;

    // Birth heartbeat: the supervisor's liveness clock starts from the
    // moment the loop is actually turning, not from fork().
    next_heartbeat_at_ = std::chrono::steady_clock::now();
    emit_heartbeat();

    while (!drain_requested_.load() && !util::interrupt_requested()) {
        emit_heartbeat();
        auto waited = epoll_.wait(events_, config_.poll_interval_ms);
        if (!waited) {
            return util::Status(util::ErrorKind::IoError,
                                "epoll_wait on the event loop failed: " +
                                    waited.status().message());
        }
        for (const util::net::EpollEvent &event : events_) {
            if (event.tag == kUnixTag) {
                accept_pending(unix_listener_);
                continue;
            }
            if (event.tag == kTcpTag) {
                accept_pending(tcp_listener_);
                continue;
            }
            if (event.tag == kWakeupTag) {
                wakeup_.consume();
                continue;
            }
            auto it = connections_.find(event.tag);
            if (it == connections_.end())
                continue; // destroyed earlier this batch
            Connection *connection = it->second.get();
            if (event.error) {
                destroy(connection);
                continue;
            }
            if (event.writable)
                flush_writes(connection);
            // Re-find: flush_writes may have destroyed it.
            if (connections_.find(event.tag) == connections_.end())
                continue;
            if (event.readable || event.hangup)
                handle_readable(connection);
        }
        // Completions may have been queued by workers during the wait
        // or synchronously by dispatch (LRU hits, rejections).
        drain_completions();
    }

    // Drain: no new connections; in-flight experiments finish and
    // their waiters are answered; queued experiments fail typed; then
    // every answered connection gets a bounded chance to be flushed.
    unix_listener_.close();
    tcp_listener_.close();
    scheduler_->drain();
    drain_completions();
    drain_flush();
    connections_.clear();
    live_connections_.store(0);
    if (!config_.unix_path.empty())
        std::remove(config_.unix_path.c_str());
    return util::Status();
}

void
Server::accept_pending(const util::net::Socket &listener)
{
    if (!listener.valid())
        return;
    // Edge-triggered listener: accept until EAGAIN.
    for (;;) {
        auto accepted = util::net::try_accept(listener);
        if (!accepted) {
            // Transient accept trouble (aborted handshake, fd
            // pressure, the net_accept fault seam): log and keep
            // serving.
            util::warn("accept failed: ", accepted.status().to_string());
            return;
        }
        if (!accepted.value().valid())
            return; // nothing more pending
        util::net::Socket socket = accepted.take();
        if (util::Status made = util::net::set_nonblocking(socket);
            !made.ok()) {
            util::warn("cannot make a connection non-blocking: ",
                       made.to_string());
            continue;
        }

        const bool overloaded =
            live_connections_.load() >= config_.max_sessions;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++sessions_accepted_;
            if (overloaded)
                ++sessions_rejected_;
        }

        auto connection = std::make_unique<Connection>();
        connection->socket = std::move(socket);
        connection->id = next_connection_id_++;
        Connection *raw = connection.get();
        if (util::Status added =
                epoll_.add(raw->socket.fd(), raw->id, true, false);
            !added.ok()) {
            util::warn("cannot register a connection: ",
                       added.to_string());
            continue; // unique_ptr closes the socket
        }
        connections_.emplace(raw->id, std::move(connection));

        if (overloaded) {
            // Shed explicitly: one error frame, then close.  The frame
            // goes through the ordinary queued-write path, so a slow
            // shed peer cannot stall the loop — its partial write just
            // waits for EPOLLOUT like anyone else's.
            raw->shed = true;
            raw->close_after_flush = true;
            enqueue_ready(raw,
                          render_error(util::Status(
                              util::ErrorKind::Overloaded,
                              "connection limit reached (" +
                                  std::to_string(config_.max_sessions) +
                                  "); retry later")));
            flush_writes(raw);
        } else {
            live_connections_.fetch_add(1);
        }
    }
}

void
Server::handle_readable(Connection *connection)
{
    char buffer[1 << 16];
    for (;;) {
        auto got = util::net::read_some(connection->socket, buffer,
                                        sizeof(buffer));
        if (!got) {
            // Reset peer or read fault: the stream is gone.
            destroy(connection);
            return;
        }
        const util::net::IoResult &result = got.value();
        if (result.bytes > 0) {
            connection->inbuf.append(buffer, result.bytes);
            continue;
        }
        if (result.closed) {
            connection->peer_closed = true;
            break;
        }
        break; // would_block: drained
    }

    parse_frames(connection);
    // parse_frames may have destroyed the connection (protocol desync
    // with nothing flushable); re-find before touching it again.
    auto it = connections_.find(connection->id);
    if (it == connections_.end())
        return;

    if (connection->peer_closed) {
        // A cleanly-closed peer cannot send more requests; keep the
        // connection only as long as answered-but-unflushed bytes or
        // outstanding run requests could still be delivered.
        if (connection->replies.empty() &&
            connection->outoff >= connection->outbuf.size()) {
            destroy(connection);
            return;
        }
        connection->close_after_flush = true;
    }
    flush_writes(connection);
}

void
Server::parse_frames(Connection *connection)
{
    for (;;) {
        const std::size_t avail =
            connection->inbuf.size() - connection->inoff;
        if (avail < kFrameHeaderBytes)
            break;
        const auto *bytes = reinterpret_cast<const unsigned char *>(
            connection->inbuf.data() + connection->inoff);
        const std::uint32_t size =
            static_cast<std::uint32_t>(bytes[0]) |
            (static_cast<std::uint32_t>(bytes[1]) << 8) |
            (static_cast<std::uint32_t>(bytes[2]) << 16) |
            (static_cast<std::uint32_t>(bytes[3]) << 24);
        if (size > config_.max_frame_bytes) {
            // A lying length prefix desyncs the stream: answer typed,
            // then hang up once the answer is flushed.
            note_protocol_error();
            enqueue_ready(connection,
                          render_error(util::Status(
                              util::ErrorKind::CorruptData,
                              "frame length prefix of " +
                                  std::to_string(size) +
                                  " bytes exceeds the " +
                                  std::to_string(config_.max_frame_bytes) +
                                  " byte cap")));
            connection->close_after_flush = true;
            connection->inoff = connection->inbuf.size();
            break;
        }
        if (avail < kFrameHeaderBytes + size)
            break; // incomplete frame: wait for more bytes
        const std::string payload = connection->inbuf.substr(
            connection->inoff + kFrameHeaderBytes, size);
        connection->inoff += kFrameHeaderBytes + size;
        dispatch(connection, payload);
        if (connections_.find(connection->id) == connections_.end())
            return; // dispatch path destroyed the connection
        if (connection->close_after_flush)
            break; // stop consuming a desynced stream
    }
    if (connection->inoff >= connection->inbuf.size()) {
        connection->inbuf.clear();
        connection->inoff = 0;
    } else if (connection->inoff > kInbufCompactThreshold) {
        connection->inbuf.erase(0, connection->inoff);
        connection->inoff = 0;
    }
}

void
Server::dispatch(Connection *connection, const std::string &payload)
{
    auto parsed = util::json_parse(payload);
    if (!parsed) {
        // Garbage JSON inside an intact frame: the framing is still in
        // sync, so answer the error and keep the connection alive.
        note_protocol_error();
        enqueue_ready(connection, render_error(parsed.status()));
        return;
    }
    const util::JsonValue &request = parsed.value();
    if (!request.is_object()) {
        note_protocol_error();
        enqueue_ready(connection,
                      render_error(util::Status(
                          util::ErrorKind::InvalidArgument,
                          "request must be a JSON object")));
        return;
    }
    const util::JsonValue *type = request.find("type");
    if (type == nullptr || !type->is_string()) {
        note_protocol_error();
        enqueue_ready(connection,
                      render_error(util::Status(
                          util::ErrorKind::InvalidArgument,
                          "request needs a string \"type\" member")));
        return;
    }

    const std::string &kind = type->string_value();
    if (kind == "ping") {
        enqueue_ready(connection, render_pong());
        return;
    }
    if (kind == "stats") {
        enqueue_ready(connection, render_stats(stats()));
        return;
    }
    if (kind == "health") {
        enqueue_ready(connection, render_health(health()));
        return;
    }
    if (kind == "run") {
        auto decoded = core::decode_experiment_request(
            request, config_.max_instructions);
        if (!decoded) {
            note_protocol_error();
            enqueue_ready(connection, render_error(decoded.status()));
            return;
        }
        // Reserve the reply slot in request order, then hand off: the
        // response lands via the completion queue whether the
        // scheduler answers synchronously (LRU hit, rejection) or from
        // a worker minutes later.
        Reply reply;
        reply.seq = connection->next_seq++;
        reply.timed = true;
        reply.begun = std::chrono::steady_clock::now();
        connection->replies.push_back(std::move(reply));
        const std::uint64_t connection_id = connection->id;
        const std::uint64_t seq = connection->replies.back().seq;
        scheduler_->submit_async(
            decoded.take(),
            [this, connection_id,
             seq](std::shared_ptr<const std::string> response) {
                queue_completion(connection_id, seq,
                                 std::move(response));
            });
        return;
    }

    note_protocol_error();
    enqueue_ready(connection,
                  render_error(util::Status(
                      util::ErrorKind::InvalidArgument,
                      "unknown request type \"" + kind + "\"")));
}

void
Server::enqueue_ready(Connection *connection, std::string frame,
                      bool timed,
                      std::chrono::steady_clock::time_point begun)
{
    Reply reply;
    reply.seq = connection->next_seq++;
    reply.ready = true;
    reply.timed = timed;
    reply.begun = begun;
    reply.frame = std::make_shared<const std::string>(std::move(frame));
    connection->replies.push_back(std::move(reply));
}

void
Server::flush_writes(Connection *connection)
{
    // Promote ready replies (in request order) into the out-buffer.
    while (!connection->replies.empty() &&
           connection->replies.front().ready) {
        Reply reply = std::move(connection->replies.front());
        connection->replies.pop_front();
        const std::string *frame = reply.frame.get();
        std::string oversized;
        if (frame->size() > config_.max_frame_bytes) {
            // The sender must never emit a frame the peer is
            // contractually required to reject.
            oversized = render_error(util::Status(
                util::ErrorKind::InvalidArgument,
                "response of " + std::to_string(frame->size()) +
                    " bytes exceeds the " +
                    std::to_string(config_.max_frame_bytes) +
                    " byte frame cap"));
            frame = &oversized;
        }
        append_frame_header(connection->outbuf, frame->size());
        connection->outbuf.append(*frame);
        if (reply.timed) {
            const double ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - reply.begun)
                    .count();
            std::lock_guard<std::mutex> lock(mutex_);
            latency_ms_.add(ms);
        }
    }

    while (connection->outoff < connection->outbuf.size()) {
        auto wrote = util::net::write_some(
            connection->socket,
            connection->outbuf.data() + connection->outoff,
            connection->outbuf.size() - connection->outoff);
        if (!wrote) {
            destroy(connection); // dead peer or write fault
            return;
        }
        connection->outoff += wrote.value().bytes;
        if (wrote.value().would_block) {
            // Partial write: park the rest under EPOLLOUT.
            if (!connection->want_write) {
                connection->want_write = true;
                update_write_interest(connection);
            }
            return;
        }
    }
    connection->outbuf.clear();
    connection->outoff = 0;
    if (connection->want_write) {
        connection->want_write = false;
        update_write_interest(connection);
    }
    if (connection->close_after_flush && connection->replies.empty())
        destroy(connection);
}

void
Server::update_write_interest(Connection *connection)
{
    if (util::Status changed =
            epoll_.modify(connection->socket.fd(), connection->id, true,
                          connection->want_write);
        !changed.ok())
        util::warn("cannot re-arm a connection: ", changed.to_string());
}

void
Server::destroy(Connection *connection)
{
    if (!connection->shed)
        live_connections_.fetch_sub(1);
    // Closing the fd deregisters it from epoll; completions still in
    // flight die against the connection map by id.
    connections_.erase(connection->id);
}

void
Server::queue_completion(std::uint64_t connection_id, std::uint64_t seq,
                         std::shared_ptr<const std::string> response)
{
    {
        std::lock_guard<std::mutex> lock(completions_mutex_);
        completions_.push_back(
            PendingCompletion{connection_id, seq, std::move(response)});
    }
    wakeup_.signal();
}

void
Server::drain_completions()
{
    std::deque<PendingCompletion> batch;
    {
        std::lock_guard<std::mutex> lock(completions_mutex_);
        batch.swap(completions_);
    }
    for (PendingCompletion &completion : batch) {
        auto it = connections_.find(completion.connection_id);
        if (it == connections_.end())
            continue; // the client vanished; the response is moot
        Connection *connection = it->second.get();
        for (Reply &reply : connection->replies) {
            if (reply.seq == completion.seq) {
                reply.frame = std::move(completion.response);
                reply.ready = true;
                break;
            }
        }
        flush_writes(connection);
    }
}

void
Server::drain_flush()
{
    // Bounded grace: flush what the peers will take, then cut.  Any
    // connection with nothing pending is closed immediately.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(config_.drain_flush_ms);
    for (;;) {
        for (auto it = connections_.begin(); it != connections_.end();) {
            Connection *connection = it->second.get();
            ++it; // destroy() erases; advance first
            if (connection->replies.empty() &&
                connection->outoff >= connection->outbuf.size())
                destroy(connection);
        }
        if (connections_.empty())
            return;
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline)
            return;
        const int timeout_ms = static_cast<int>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - now)
                .count());
        auto waited =
            epoll_.wait(events_, std::min(timeout_ms, 50));
        if (!waited)
            return;
        for (const util::net::EpollEvent &event : events_) {
            auto found = connections_.find(event.tag);
            if (found == connections_.end())
                continue;
            if (event.error) {
                destroy(found->second.get());
                continue;
            }
            if (event.writable)
                flush_writes(found->second.get());
        }
    }
}

void
Server::note_protocol_error()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++protocol_errors_;
}

StatsSnapshot
Server::stats() const
{
    const SchedulerCounters counters = scheduler_->counters();
    StatsSnapshot snapshot;
    snapshot.requests_served = counters.served;
    snapshot.dedup_hits = counters.dedup_hits;
    snapshot.response_lru_hits = counters.response_lru_hits;
    snapshot.response_lru_evictions = counters.response_lru_evictions;
    snapshot.response_lru_entries = counters.response_lru_entries;
    snapshot.response_lru_bytes = counters.response_lru_bytes;
    snapshot.cache_hits = counters.cache_hits;
    snapshot.analytic_runs = counters.analytic_runs;
    snapshot.sim_runs = counters.sim_runs;
    snapshot.kernel_path_runs = counters.kernel_path_runs;
    snapshot.reference_path_runs = counters.reference_path_runs;
    snapshot.mixed_path_runs = counters.mixed_path_runs;
    snapshot.rejected_overloaded = counters.rejected_overloaded;
    snapshot.rejected_deadline = counters.rejected_deadline;
    snapshot.rejected_shutting_down = counters.rejected_shutting_down;
    snapshot.queue_depth = counters.queue_depth;
    snapshot.running = counters.running;
    snapshot.locks_broken = counters.locks_broken;
    snapshot.open_connections = live_connections_.load();
    snapshot.uptime_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started_at_)
            .count();
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot.rejected_overloaded += sessions_rejected_;
    snapshot.protocol_errors = protocol_errors_;
    snapshot.sessions_accepted = sessions_accepted_;
    snapshot.latency_p50_ms = latency_ms_.p50();
    snapshot.latency_p99_ms = latency_ms_.p99();
    return snapshot;
}

HealthSnapshot
Server::health() const
{
    HealthSnapshot snapshot;
    snapshot.shard_index = config_.shard_index;
    snapshot.pid = static_cast<std::int64_t>(::getpid());
    snapshot.draining = drain_requested_.load();
    snapshot.uptime_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started_at_)
            .count();
    return snapshot;
}

void
Server::emit_heartbeat()
{
    if (config_.heartbeat_fd < 0)
        return;
    const auto now = std::chrono::steady_clock::now();
    if (now < next_heartbeat_at_)
        return;
    next_heartbeat_at_ =
        now + std::chrono::milliseconds(
                  std::max(config_.heartbeat_interval_ms, 1));
    // Non-blocking by construction (the supervisor opens the pipe
    // O_NONBLOCK): a full pipe means the supervisor is behind on
    // draining, and dropping a pulse is exactly right — liveness is
    // recency, not a count.
    const char pulse = 'h';
    (void)!::write(config_.heartbeat_fd, &pulse, 1);
}

} // namespace leakbound::serve
