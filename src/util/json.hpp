/**
 * @file
 * Minimal streaming JSON writer for machine-readable bench reports.
 *
 * The bench binaries emit their tables and timing data as JSON (the
 * `--json` flag) so perf trajectories can be tracked across commits
 * without scraping ASCII tables.  The writer produces deterministic,
 * pretty-printed output: keys appear in emission order and doubles are
 * printed with enough digits to round-trip.
 */

#ifndef LEAKBOUND_UTIL_JSON_HPP
#define LEAKBOUND_UTIL_JSON_HPP

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.hpp"

namespace leakbound::util {

/** Escape @p s for inclusion inside a JSON string literal (no quotes). */
std::string json_escape(const std::string &s);

/**
 * Streaming JSON emitter with explicit structure calls.  Usage:
 * @code
 *   JsonWriter w;
 *   w.begin_object();
 *   w.key("jobs").value(8u);
 *   w.key("tables").begin_array();
 *   ...
 *   w.end_array();
 *   w.end_object();
 *   write_file(path, w.str());
 * @endcode
 *
 * Structural misuse (e.g. end_array() with no open array) panics: the
 * report writers are static code paths, so a mismatch is a bug.
 */
class JsonWriter
{
  public:
    JsonWriter();

    JsonWriter &begin_object();
    JsonWriter &end_object();
    JsonWriter &begin_array();
    JsonWriter &end_array();

    /** Emit an object key; the next call must emit its value. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(bool v);
    JsonWriter &null();

    /** Convenience: an array of strings in one call. */
    JsonWriter &value(const std::vector<std::string> &v);

    /** The document so far (call after the root closes). */
    std::string str() const { return out_.str(); }

  private:
    enum class Scope : std::uint8_t { Object, Array };

    void before_value();
    void newline_indent();

    std::ostringstream out_;
    std::vector<Scope> scopes_;
    /** Whether the current scope already holds at least one entry. */
    std::vector<bool> has_entries_;
    bool pending_key_ = false;
};

/**
 * Write @p contents to @p path atomically enough for reports (truncate
 * + write + close).  Returns an ErrorKind::IoError Status on create or
 * short-write failure so report emission can degrade instead of dying.
 */
Status write_text_file(const std::string &path,
                       const std::string &contents);

/**
 * A parsed JSON document node.  The serve protocol receives requests
 * as length-prefixed JSON frames; this is the read side of the
 * JsonWriter above — small, strict, and defensive (depth-capped,
 * bounds-checked, no exceptions for malformed input: json_parse
 * returns a typed Status instead).
 *
 * Objects preserve key order and allow duplicate keys syntactically;
 * find() returns the first occurrence.  Numbers remember whether the
 * literal was integral so u64 fields (instruction counts, cycle
 * thresholds) round-trip exactly.
 */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    using Member = std::pair<std::string, JsonValue>;

    JsonValue() = default; ///< null

    Kind kind() const { return kind_; }
    bool is_null() const { return kind_ == Kind::Null; }
    bool is_bool() const { return kind_ == Kind::Bool; }
    bool is_number() const { return kind_ == Kind::Number; }
    bool is_string() const { return kind_ == Kind::String; }
    bool is_array() const { return kind_ == Kind::Array; }
    bool is_object() const { return kind_ == Kind::Object; }

    /** The boolean payload; asserts is_bool(). */
    bool bool_value() const;

    /** The numeric payload as a double; asserts is_number(). */
    double number_value() const;

    /**
     * Whether the literal was a non-negative integer that fits u64
     * exactly (so "8000000" does, "8e6" and "-1" do not).
     */
    bool is_u64() const { return kind_ == Kind::Number && exact_u64_; }

    /** The exact u64 payload; asserts is_u64(). */
    std::uint64_t u64_value() const;

    /** The string payload; asserts is_string(). */
    const std::string &string_value() const;

    /** The elements; asserts is_array(). */
    const std::vector<JsonValue> &array() const;

    /** The members in document order; asserts is_object(). */
    const std::vector<Member> &object() const;

    /** First member named @p key, or nullptr; asserts is_object(). */
    const JsonValue *find(const std::string &key) const;

    // Construction helpers (the parser and tests use these).
    static JsonValue make_null();
    static JsonValue make_bool(bool v);
    static JsonValue make_number(double v);
    static JsonValue make_u64(std::uint64_t v);
    static JsonValue make_string(std::string v);
    static JsonValue make_array(std::vector<JsonValue> v);
    static JsonValue make_object(std::vector<Member> v);

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    bool exact_u64_ = false;
    std::uint64_t u64_ = 0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::vector<Member> object_;
};

/** Nesting depth json_parse accepts before rejecting the document. */
inline constexpr std::size_t kJsonMaxDepth = 64;

/**
 * Parse @p text as one JSON document (leading/trailing whitespace
 * allowed, nothing else).  Malformed input — bad syntax, trailing
 * garbage, nesting deeper than kJsonMaxDepth, invalid \u escapes —
 * yields an ErrorKind::CorruptData Status with an offset-bearing
 * message; the parser never throws and never reads out of bounds.
 */
Expected<JsonValue> json_parse(std::string_view text);

} // namespace leakbound::util

#endif // LEAKBOUND_UTIL_JSON_HPP
