/**
 * @file
 * Abstract instruction and access records.
 *
 * The limit study never inspects opcode semantics; an instruction is
 * fully described by its PC, whether it touches memory, and the data
 * address if so (DESIGN.md §3, Alpha-ISA substitution).
 */

#ifndef LEAKBOUND_TRACE_RECORD_HPP
#define LEAKBOUND_TRACE_RECORD_HPP

#include <cstdint>

#include "util/types.hpp"

namespace leakbound::trace {

/** Instruction classes the timing model distinguishes. */
enum class InstrKind : std::uint8_t {
    Op,    ///< non-memory instruction
    Load,  ///< memory read
    Store, ///< memory write
};

/** One dynamic instruction produced by a workload generator. */
struct MicroOp
{
    Pc pc = 0;                       ///< instruction address (bytes)
    InstrKind kind = InstrKind::Op;  ///< class
    Addr addr = kInvalidAddr;        ///< data address for Load/Store
};

/** One timed cache access, as dumped/replayed by trace_io. */
struct TimedAccess
{
    Cycle cycle = 0;                ///< completion-ordered timestamp
    Pc pc = 0;                      ///< accessing instruction
    Addr addr = 0;                  ///< byte address accessed
    InstrKind kind = InstrKind::Op; ///< Op encodes instruction fetches
};

} // namespace leakbound::trace

#endif // LEAKBOUND_TRACE_RECORD_HPP
