/**
 * @file
 * Implementation of the experiment artifact cache.
 */

#include "core/artifact_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>

#include <fcntl.h>
#include <unistd.h>

#include "interval/interval_histogram.hpp"
#include "util/binary_io.hpp"
#include "util/fault_injection.hpp"
#include "util/fingerprint.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"

namespace leakbound::core {

namespace {

constexpr char kEntryMagic[8] = {'l', 'k', 'b', 'a', 'r', 't', '0', '1'};

void
mix_cache_config(util::Fingerprint &fp, const sim::CacheConfig &config)
{
    // The name string is cosmetic (stats labels) and deliberately
    // excluded: renaming a cache must not invalidate its artifacts.
    fp.mix_u64(config.size_bytes);
    fp.mix_u64(config.line_bytes);
    fp.mix_u64(config.associativity);
    fp.mix_u64(config.hit_latency);
    fp.mix_u64(static_cast<std::uint64_t>(config.replacement));
}

void
serialize_cache_stats(util::BinaryWriter &w, const sim::CacheStats &stats)
{
    w.put_u64(stats.accesses);
    w.put_u64(stats.hits);
    w.put_u64(stats.misses);
    w.put_u64(stats.evictions);
}

sim::CacheStats
deserialize_cache_stats(util::BinaryReader &r)
{
    sim::CacheStats stats;
    stats.accesses = r.get_u64();
    stats.hits = r.get_u64();
    stats.misses = r.get_u64();
    stats.evictions = r.get_u64();
    return stats;
}

void
serialize_observation(util::BinaryWriter &w, const CacheObservation &obs)
{
    obs.intervals.serialize(w);
    serialize_cache_stats(w, obs.stats);
}

std::optional<CacheObservation>
deserialize_observation(util::BinaryReader &r)
{
    auto intervals = interval::IntervalHistogramSet::deserialize(r);
    if (!intervals)
        return std::nullopt;
    CacheObservation obs(std::move(*intervals));
    obs.stats = deserialize_cache_stats(r);
    if (r.failed())
        return std::nullopt;
    return obs;
}

/** Age of the file at @p path; a very large value when unreadable. */
std::chrono::milliseconds
file_age(const std::string &path)
{
    std::error_code ec;
    const auto mtime = std::filesystem::last_write_time(path, ec);
    if (ec)
        return std::chrono::milliseconds::max();
    const auto age =
        std::filesystem::file_time_type::clock::now() - mtime;
    return std::chrono::duration_cast<std::chrono::milliseconds>(age);
}

/**
 * Removes the lock file on scope exit, so a simulate() that throws
 * while this process owns the entry lock cannot leave the lock behind
 * to stall every other process until the stale-break age.
 */
class LockGuard
{
  public:
    explicit LockGuard(std::string path) : path_(std::move(path)) {}
    ~LockGuard() { std::remove(path_.c_str()); }
    LockGuard(const LockGuard &) = delete;
    LockGuard &operator=(const LockGuard &) = delete;

  private:
    std::string path_;
};

} // namespace

std::uint64_t
fingerprint_config(const ExperimentConfig &config)
{
    util::Fingerprint fp;
    fp.mix_u64(kArtifactFormatVersion);
    fp.mix_u64(config.instructions);
    mix_cache_config(fp, config.hierarchy.l1i);
    mix_cache_config(fp, config.hierarchy.l1d);
    mix_cache_config(fp, config.hierarchy.l2);
    fp.mix_u64(config.hierarchy.memory_latency);
    fp.mix_u64(config.core.fetch_width);
    fp.mix_u64(config.core.instr_bytes);
    fp.mix_u64(config.core.miss_overlap_percent);
    fp.mix_u64(config.stride.table_entries);
    fp.mix_u64(config.stride.confirmations);
    fp.mix_u64(config.nl_lead_time);
    fp.mix_u64(config.collect_l2 ? 1 : 0);
    // Hash the *derived* edge list, not extra_edges verbatim: two
    // configs whose extras dedupe/sort to the same bins produce
    // identical results and should share an entry.
    fp.mix_u64_vector(
        interval::IntervalHistogramSet::default_edges(config.extra_edges));
    // Engine + fast-path version: analytic and simulated results are
    // byte-identical by construction, but keying them apart means a
    // fast-path bug can never poison the simulated cache population.
    fp.mix_u64(static_cast<std::uint64_t>(config.engine));
    fp.mix_u64(kAnalyticEngineVersion);
    // Multicore shape: the length prefix keeps an empty mix from
    // aliasing a homogeneous explicit one, and the names keep mixes
    // apart by content *and* order (core i's stream depends on its
    // slot).
    fp.mix_u64(config.core_count);
    fp.mix_u64(config.workload_mix.size());
    for (const std::string &name : config.workload_mix)
        fp.mix_string(name);
    return fp.digest();
}

std::uint64_t
fingerprint_entry(std::uint64_t config_fingerprint,
                  const std::string &workload)
{
    util::Fingerprint fp;
    fp.mix_u64(config_fingerprint);
    fp.mix_string(workload);
    return fp.digest();
}

std::uint64_t
fingerprint_experiment(const std::string &workload,
                       const ExperimentConfig &config)
{
    return fingerprint_entry(fingerprint_config(config), workload);
}

std::string
serialize_result(const ExperimentResult &result)
{
    util::BinaryWriter w;
    w.put_string(result.workload);
    w.put_u64(result.core.instructions);
    w.put_u64(result.core.cycles);
    w.put_u64(result.core.fetch_groups);
    w.put_u64(result.core.loads);
    w.put_u64(result.core.stores);
    w.put_u64(result.core.instr_stall_cycles);
    w.put_u64(result.core.data_stall_cycles);
    serialize_observation(w, result.icache);
    serialize_observation(w, result.dcache);
    w.put_u8(result.l2cache.has_value() ? 1 : 0);
    if (result.l2cache)
        serialize_observation(w, *result.l2cache);
    serialize_cache_stats(w, result.l2);
    return w.take();
}

std::optional<ExperimentResult>
deserialize_result(const std::string &bytes)
{
    util::BinaryReader r(bytes);
    const std::string workload = r.get_string();
    cpu::CoreRunStats core;
    core.instructions = r.get_u64();
    core.cycles = r.get_u64();
    core.fetch_groups = r.get_u64();
    core.loads = r.get_u64();
    core.stores = r.get_u64();
    core.instr_stall_cycles = r.get_u64();
    core.data_stall_cycles = r.get_u64();
    auto icache = deserialize_observation(r);
    if (!icache)
        return std::nullopt;
    auto dcache = deserialize_observation(r);
    if (!dcache)
        return std::nullopt;

    ExperimentResult result(std::move(*icache), std::move(*dcache));
    result.workload = workload;
    result.core = core;
    const std::uint8_t has_l2 = r.get_u8();
    if (has_l2 > 1)
        return std::nullopt;
    if (has_l2) {
        auto l2cache = deserialize_observation(r);
        if (!l2cache)
            return std::nullopt;
        result.l2cache.emplace(std::move(*l2cache));
    }
    result.l2 = deserialize_cache_stats(r);
    // Trailing garbage means the payload is not what we wrote.
    if (!r.at_end())
        return std::nullopt;
    return result;
}

std::string
resolve_cache_dir(const std::string &flag_value)
{
    if (!flag_value.empty())
        return flag_value;
    const char *env = std::getenv("LEAKBOUND_CACHE_DIR");
    return env ? std::string(env) : std::string();
}

ArtifactCache::ArtifactCache(std::string dir)
    : ArtifactCache(std::move(dir), LockOptions())
{
}

ArtifactCache::ArtifactCache(std::string dir, LockOptions options)
    : dir_(std::move(dir)), options_(options)
{
    LEAKBOUND_ASSERT(!dir_.empty(), "artifact cache needs a directory");
}

std::string
ArtifactCache::entry_path(std::uint64_t key) const
{
    return dir_ + "/" + util::hex64(key) + ".lbx";
}

std::string
ArtifactCache::lock_path(std::uint64_t key) const
{
    return entry_path(key) + ".lock";
}

bool
ArtifactCache::try_lock(const std::string &path) const
{
    if (util::fault::should_fail(util::fault::Site::Lock, path))
        return false;
    const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0)
        return false;
    const std::string pid = std::to_string(::getpid()) + "\n";
    // The pid is advisory debugging info; a failed write is harmless.
    [[maybe_unused]] const auto ignored =
        ::write(fd, pid.data(), pid.size());
    ::close(fd);
    return true;
}

std::optional<ExperimentResult>
ArtifactCache::try_load(std::uint64_t key) const
{
    const std::string path = entry_path(key);
    std::string bytes;
    const util::Status read = util::read_file_bytes(path, bytes);
    if (!read.ok()) {
        // A missing entry is the normal cold-cache case; anything else
        // (unreadable file) is an entry we cannot use — count it so the
        // report shows why the cache ran cold.
        if (read.kind() != util::ErrorKind::NotFound) {
            corrupt_entries_.fetch_add(1, std::memory_order_relaxed);
            util::warn("cannot read cache entry: ", read.to_string());
        }
        return std::nullopt;
    }

    auto reject = [&path, this]() -> std::optional<ExperimentResult> {
        corrupt_entries_.fetch_add(1, std::memory_order_relaxed);
        util::warn("discarding corrupt/mismatched cache entry: ", path);
        std::remove(path.c_str());
        return std::nullopt;
    };

    util::BinaryReader r(bytes);
    char magic[sizeof(kEntryMagic)];
    for (char &c : magic)
        c = static_cast<char>(r.get_u8());
    if (r.failed() ||
        std::memcmp(magic, kEntryMagic, sizeof(kEntryMagic)) != 0)
        return reject();
    if (r.get_u32() != kArtifactFormatVersion)
        return reject();
    if (r.get_u64() != key)
        return reject();
    const std::uint64_t payload_size = r.get_u64();
    if (r.failed() || payload_size + 8 != r.remaining())
        return reject();

    const std::size_t header = bytes.size() - r.remaining();
    const std::string payload =
        bytes.substr(header, static_cast<std::size_t>(payload_size));
    if (util::fnv1a(payload.data(), payload.size()) !=
        util::BinaryReader(bytes.data() + header + payload.size(), 8)
            .get_u64())
        return reject();

    auto result = deserialize_result(payload);
    if (!result)
        return reject();
    // No simulation ran for a loaded result, so no decision-logic lane
    // did either; stamping it here covers every load site (fresh hit,
    // waited-on-writer, post-acquire re-probe).
    result->sim_path_effective = "cache";
    return result;
}

void
ArtifactCache::demote(const std::string &why) const
{
    if (degraded_.exchange(true, std::memory_order_relaxed))
        return; // already demoted; warn only once per cache
    util::warn("artifact cache demoted to pass-through (", why,
               "); results stay correct, later runs lose the warm-cache "
               "speedup");
}

CacheHealth
ArtifactCache::health() const
{
    CacheHealth h;
    h.store_failures = store_failures_.load(std::memory_order_relaxed);
    h.corrupt_entries = corrupt_entries_.load(std::memory_order_relaxed);
    h.lock_breaks = lock_breaks_.load(std::memory_order_relaxed);
    h.lock_timeouts = lock_timeouts_.load(std::memory_order_relaxed);
    h.lock_retries = lock_retries_.load(std::memory_order_relaxed);
    h.degraded_jobs = degraded_jobs_.load(std::memory_order_relaxed);
    h.degraded = degraded_.load(std::memory_order_relaxed);
    return h;
}

util::Status
ArtifactCache::store(std::uint64_t key, const ExperimentResult &result) const
{
    auto record_failure = [this](util::Status status) {
        const std::uint64_t failures =
            store_failures_.fetch_add(1, std::memory_order_relaxed) + 1;
        util::warn("cannot write cache entry: ", status.to_string());
        if (failures >= kMaxStoreFailures)
            demote("repeated store failures");
        return status;
    };

    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        return record_failure(util::Status(
            util::ErrorKind::IoError,
            "cannot create cache dir " + dir_ + ": " + ec.message()));
    }

    const std::string payload = serialize_result(result);
    util::BinaryWriter w;
    for (char c : kEntryMagic)
        w.put_u8(static_cast<std::uint8_t>(c));
    w.put_u32(kArtifactFormatVersion);
    w.put_u64(key);
    w.put_u64(payload.size());
    std::string bytes = w.take();
    bytes += payload;
    util::BinaryWriter tail;
    tail.put_u64(util::fnv1a(payload.data(), payload.size()));
    bytes += tail.take();

    util::Status wrote = util::write_file_atomic(entry_path(key), bytes);
    if (!wrote.ok())
        return record_failure(std::move(wrote));
    return util::Status();
}

ExperimentResult
ArtifactCache::load_or_run(std::uint64_t key, const std::string &workload,
                           const std::function<ExperimentResult()> &simulate)
{
    if (degraded()) {
        // The cache already proved unusable this run; don't keep
        // hammering a broken directory, just do the work.
        degraded_jobs_.fetch_add(1, std::memory_order_relaxed);
        return simulate();
    }

    const auto load_start = std::chrono::steady_clock::now();
    if (auto hit = try_load(key)) {
        hit->from_cache = true;
        hit->wall_seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - load_start)
                .count();
        util::inform("cache hit for ", workload, " (",
                     util::hex64(key), ")");
        return std::move(*hit);
    }

    // Miss.  Whoever wins the entry lock simulates and publishes; the
    // losers wait for the entry instead of duplicating the replay.
    const std::string lock = lock_path(key);
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec); // lock needs the dir
    if (ec) {
        demote("cannot create cache dir " + dir_ + ": " + ec.message());
        degraded_jobs_.fetch_add(1, std::memory_order_relaxed);
        return simulate();
    }

    // Capped exponential backoff with deterministic jitter: the jitter
    // stream is seeded from the entry key, so a given contention
    // pattern replays identically (and two waiters on the same entry
    // still decorrelate via their different acquisition interleaving).
    util::Rng jitter(key ^ 0xcac4e10cULL);
    auto backoff = options_.backoff_initial;
    const auto wait_start = std::chrono::steady_clock::now();
    while (!try_lock(lock)) {
        const auto lock_age = file_age(lock);
        if (lock_age != std::chrono::milliseconds::max() &&
            lock_age > options_.stale_age) {
            lock_breaks_.fetch_add(1, std::memory_order_relaxed);
            util::warn("breaking stale cache lock: ", lock);
            std::remove(lock.c_str());
            continue;
        }
        if (std::chrono::steady_clock::now() - wait_start >
            options_.wait_timeout) {
            lock_timeouts_.fetch_add(1, std::memory_order_relaxed);
            util::warn("timed out waiting for cache lock ", lock,
                       "; simulating ", workload, " without caching");
            return simulate();
        }
        lock_retries_.fetch_add(1, std::memory_order_relaxed);
        const auto sleep =
            backoff + std::chrono::milliseconds(jitter.next_below(
                          static_cast<std::uint64_t>(backoff.count()) / 2 +
                          1));
        std::this_thread::sleep_for(sleep);
        backoff = std::min(backoff * 2, options_.backoff_cap);
        // The lock holder may have published while we slept.
        if (auto hit = try_load(key)) {
            hit->from_cache = true;
            hit->wall_seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - load_start)
                    .count();
            util::inform("cache hit for ", workload, " (",
                         util::hex64(key), ", waited on writer)");
            return std::move(*hit);
        }
    }

    // We own the lock; the guard releases it even if simulate()
    // throws, so a dead job can never wedge sibling processes for the
    // full stale-break age.  Re-probe once (the previous holder may
    // have published between our miss and the acquire), then simulate.
    LockGuard guard(lock);
    if (auto hit = try_load(key)) {
        hit->from_cache = true;
        return std::move(*hit);
    }
    ExperimentResult fresh = simulate();
    (void)store(key, fresh); // counted + demotes internally on failure
    return fresh;
}

} // namespace leakbound::core
