/**
 * @file
 * Stress test of the epoll event loop: hold as many simultaneously
 * open connections against an in-process daemon as RLIMIT_NOFILE
 * allows (scaled to the environment, capped so CI stays fast), and
 * prove three things the thread-per-session model could not deliver:
 *
 *  - the daemon *accepts* them all (no per-connection thread, so the
 *    cap is file descriptors, not stacks);
 *  - it stays responsive on a fresh connection while every held
 *    socket sits open;
 *  - the held sockets themselves are still live sessions — a sample
 *    of them round-trips requests after sitting idle.
 *
 * Both ends of every connection live in this one process, so each
 * held connection costs two descriptors; the target is derived from
 * the soft RLIMIT_NOFILE with slack for the suite's own files, and
 * the test skips outright when the limit is too low to say anything.
 *
 * Carries the `serve` CTest label, so the tsan preset runs it under
 * ThreadSanitizer too.
 */

#include <gtest/gtest.h>

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/net.hpp"
#include "util/status.hpp"

using namespace leakbound;
using namespace leakbound::serve;

namespace {

/** Seconds since @p begun, for the phase timings the test prints. */
double
seconds_since(std::chrono::steady_clock::time_point begun)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - begun)
        .count();
}

/** Spin until @p predicate or the deadline; returns whether it held. */
template <typename F>
bool
eventually(F predicate,
           std::chrono::milliseconds deadline =
               std::chrono::seconds(30))
{
    const auto until = std::chrono::steady_clock::now() + deadline;
    while (std::chrono::steady_clock::now() < until) {
        if (predicate())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return predicate();
}

} // namespace

TEST(ServeStress, HoldsAFleetOfOpenConnectionsAndStaysResponsive)
{
    rlimit limit{};
    ASSERT_EQ(getrlimit(RLIMIT_NOFILE, &limit), 0);

    // Two fds per held connection (client end + daemon end), plus
    // slack for the binary's own files, the listener, the epoll and
    // eventfd descriptors, and whatever the allocator has open.
    constexpr std::size_t kSlackFds = 128;
    constexpr std::size_t kFloor = 64;   // below this, prove nothing
    constexpr std::size_t kCap = 2'000;  // enough to embarrass threads
    if (limit.rlim_cur < kSlackFds + 2 * kFloor)
        GTEST_SKIP() << "RLIMIT_NOFILE " << limit.rlim_cur
                     << " is too low to hold " << kFloor
                     << " connections";
    const std::size_t target = std::min<std::size_t>(
        (static_cast<std::size_t>(limit.rlim_cur) - kSlackFds) / 2,
        kCap);

    ServerConfig config;
    config.unix_path.clear();
    config.listen_tcp = true;
    config.tcp_port = 0;
    config.scheduler.workers = 1;
    Server server(config);
    ASSERT_TRUE(server.start().ok());
    Endpoint endpoint;
    endpoint.tcp_port = server.tcp_port();
    std::thread serving([&server] {
        util::Status served = server.serve();
        EXPECT_TRUE(served.ok()) << served.to_string();
    });

    // Open the fleet.  A refused connect mid-fleet is an environment
    // hiccup only if rare — the daemon itself must not shed below its
    // max_sessions default (10k), which dwarfs the target here.
    std::vector<util::net::Socket> held;
    held.reserve(target);
    auto begun = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < target; ++i) {
        auto socket = connect_endpoint(endpoint);
        if (!socket) {
            ADD_FAILURE() << "connect " << i << "/" << target
                          << " failed: "
                          << socket.status().to_string();
            break;
        }
        held.push_back(socket.take());
    }
    ASSERT_GE(held.size(), target * 9 / 10);
    std::printf("stress: opened %zu connections in %.2fs\n",
                held.size(), seconds_since(begun));

    // Every accept lands in the event loop; wait for the daemon's own
    // count to agree with ours.
    begun = std::chrono::steady_clock::now();
    EXPECT_TRUE(eventually([&] {
        return server.stats().open_connections >= held.size();
    })) << "daemon sees " << server.stats().open_connections
        << " open connections, client holds " << held.size();
    std::printf("stress: daemon counted them in %.2fs\n",
                seconds_since(begun));

    // Fresh connections still round-trip while the fleet sits open.
    auto pong = call_endpoint(endpoint, build_ping_request());
    ASSERT_TRUE(pong.has_value()) << pong.status().to_string();

    // And the held sockets are live sessions, not zombies: a spread
    // sample of them serves requests after idling.
    begun = std::chrono::steady_clock::now();
    const std::size_t stride = std::max<std::size_t>(held.size() / 16, 1);
    for (std::size_t i = 0; i < held.size(); i += stride) {
        auto reply = call(held[i], build_ping_request());
        ASSERT_TRUE(reply.has_value())
            << "held connection " << i << " went dead: "
            << reply.status().to_string();
    }
    std::printf("stress: sampled held connections in %.2fs\n",
                seconds_since(begun));

    // Closing the fleet drains the daemon's count back down (the
    // stats probes above may briefly add one of their own).
    begun = std::chrono::steady_clock::now();
    held.clear();
    EXPECT_TRUE(eventually([&] {
        return server.stats().open_connections <= 1;
    })) << server.stats().open_connections
        << " connections still open after the fleet closed";
    std::printf("stress: fleet closed and reaped in %.2fs\n",
                seconds_since(begun));

    server.request_drain();
    serving.join();
}
