/**
 * @file
 * Technology-node parameter sets for the leakage limit study.
 *
 * The paper's limit math consumes a small set of circuit parameters:
 * per-line leakage powers in each mode (from HotLeakage), the dynamic
 * re-fetch energy of an induced miss (from CACTI), and the mode
 * transition durations (from Li et al., DATE'04).  This module provides
 * the four calibrated nodes the paper evaluates (70/100/130/180nm) plus
 * the machinery to define custom nodes (the "generalized model",
 * Section 3.3).
 *
 * All powers are normalized: the active leakage power of one cache line
 * is 1.0 LU/cycle (see util/types.hpp).  See DESIGN.md §2 for how the
 * per-node `refetch_energy` values were derived by inverting the
 * paper's Table 1.
 */

#ifndef LEAKBOUND_POWER_TECHNOLOGY_HPP
#define LEAKBOUND_POWER_TECHNOLOGY_HPP

#include <string>
#include <vector>

#include "util/types.hpp"

namespace leakbound::power {

/**
 * Mode transition timings in cycles (paper Fig. 4 and Section 4.2,
 * values from Li et al. [10]).
 */
struct ModeTimings
{
    Cycles s1 = 30; ///< sleep entry: voltage high -> off
    Cycles s3 = 3;  ///< sleep exit: voltage off -> high
    Cycles s4 = 4;  ///< re-fetch wait after wakeup: L2 latency D - s3
    Cycles d1 = 3;  ///< drowsy entry: voltage high -> low
    Cycles d3 = 3;  ///< drowsy exit: voltage low -> high

    /** Total non-resident overhead of a sleep interval (s1+s3+s4). */
    Cycles sleep_overhead() const { return s1 + s3 + s4; }

    /** Total non-resident overhead of a drowsy interval (d1+d3). */
    Cycles drowsy_overhead() const { return d1 + d3; }

    /**
     * Derive timings for a different L2 hit latency @p l2_latency:
     * s4 = max(D - s3, 0) per the paper's definition.
     */
    static ModeTimings with_l2_latency(Cycles l2_latency);
};

/**
 * Complete parameter set for one implementation technology.  This is
 * the input record of the generalized model (paper Section 3.3): every
 * individual assumption — durations, per-mode leakage powers, and the
 * induced-miss energy — appears here explicitly.
 */
struct TechnologyParams
{
    std::string name;    ///< e.g. "70nm"
    double feature_nm = 70.0; ///< drawn feature size in nanometres
    double vdd = 0.9;    ///< supply voltage (V), paper Table 2
    double vth = 0.1902; ///< threshold voltage (V), paper Table 2

    /** Active-mode leakage power per line (normalization basis). */
    Power active_power = 1.0;
    /** Drowsy-mode leakage power per line, fraction of active. */
    Power drowsy_power = 1.0 / 3.0;
    /** Sleep-mode leakage power per line (Gated-Vdd, ~zero). */
    Power sleep_power = 0.0;

    /**
     * Dynamic energy of re-fetching one line from L2 after an induced
     * miss (the "*" cost in paper Fig. 4), in LU·cycles.  Calibrated
     * per node so the computed drowsy-sleep inflection point matches
     * the paper's Table 1 (see DESIGN.md §2).
     */
    Energy refetch_energy = 333.833333333333333;

    /**
     * Always-on leakage overhead of the per-line decay counter used by
     * the Sleep(10K) cache-decay scheme (paper footnote 2), as a
     * fraction of active line leakage.  Applied only by decay-style
     * policies.
     */
    Power decay_counter_overhead = 0.002;

    /** Mode transition timings. */
    ModeTimings timings;

    /** Sanity-check invariants; calls fatal() on user errors. */
    void validate() const;
};

/** The four nodes evaluated in the paper (Tables 1 and 2). */
enum class TechNode { Nm70, Nm100, Nm130, Nm180 };

/** All paper nodes in the order the paper tabulates them (70 -> 180). */
const std::vector<TechNode> &all_nodes();

/** Calibrated parameters for a paper node. */
const TechnologyParams &node_params(TechNode node);

/** Look up a paper node by name ("70nm", "100nm", ...); fatal if unknown. */
const TechnologyParams &node_params_by_name(const std::string &name);

/** Printable node name. */
const char *node_name(TechNode node);

} // namespace leakbound::power

#endif // LEAKBOUND_POWER_TECHNOLOGY_HPP
