/**
 * @file
 * Robustness tests of the serve wire layer: the JSON parser, the
 * length-prefixed frame codec, hex payload coding, and the typed
 * error round trip.  The invariant under test everywhere: malformed
 * or hostile input — truncated frames, oversized length prefixes,
 * garbage JSON, a peer that vanishes mid-request — produces a typed
 * util::Status, never a crash, hang, or out-of-bounds read.
 *
 * Carries the `serve` and `chaos` CTest labels; the injector-driven
 * cases skip themselves when fault injection is compiled out.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <csignal>
#include <string>
#include <thread>
#include <utility>

#include <unistd.h>

#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "util/fault_injection.hpp"
#include "util/interrupt.hpp"
#include "util/json.hpp"
#include "util/net.hpp"
#include "util/stats.hpp"
#include "util/status.hpp"

using namespace leakbound;
using namespace leakbound::serve;
namespace net = leakbound::util::net;
namespace fault = leakbound::util::fault;

namespace {

/** A connected loopback (client, server) socket pair. */
std::pair<net::Socket, net::Socket>
connected_pair()
{
    auto listener = net::listen_tcp("127.0.0.1", 0);
    EXPECT_TRUE(listener.has_value()) << listener.status().to_string();
    auto client =
        net::connect_tcp("127.0.0.1", net::local_port(listener.value()));
    EXPECT_TRUE(client.has_value()) << client.status().to_string();
    auto server = net::accept_connection(listener.value());
    EXPECT_TRUE(server.has_value()) << server.status().to_string();
    return {client.take(), server.take()};
}

} // namespace

// ---------------------------------------------------------------- JSON

TEST(JsonParse, RoundTripsTheWriterOutput)
{
    util::JsonWriter w;
    w.begin_object();
    w.key("name").value("leak\"bound\n");
    w.key("count").value(std::uint64_t{18446744073709551615ull});
    w.key("ratio").value(0.25);
    w.key("flag").value(true);
    w.key("edges").begin_array();
    w.value(std::uint64_t{1});
    w.value(std::uint64_t{10000});
    w.end_array();
    w.key("nothing").null();
    w.end_object();

    auto parsed = util::json_parse(w.str());
    ASSERT_TRUE(parsed.has_value()) << parsed.status().to_string();
    const util::JsonValue &doc = parsed.value();
    ASSERT_TRUE(doc.is_object());
    EXPECT_EQ(doc.find("name")->string_value(), "leak\"bound\n");
    ASSERT_TRUE(doc.find("count")->is_u64());
    EXPECT_EQ(doc.find("count")->u64_value(), 18446744073709551615ull);
    EXPECT_DOUBLE_EQ(doc.find("ratio")->number_value(), 0.25);
    EXPECT_TRUE(doc.find("flag")->bool_value());
    ASSERT_TRUE(doc.find("edges")->is_array());
    EXPECT_EQ(doc.find("edges")->array().size(), 2u);
    EXPECT_TRUE(doc.find("nothing")->is_null());
    EXPECT_EQ(doc.find("absent"), nullptr);
}

TEST(JsonParse, TracksU64Exactness)
{
    auto exact = util::json_parse("8000000");
    ASSERT_TRUE(exact.has_value());
    EXPECT_TRUE(exact.value().is_u64());
    EXPECT_EQ(exact.value().u64_value(), 8'000'000u);

    // Scientific notation and negatives are numbers but not exact u64s.
    for (const char *text : {"8e6", "-1", "1.5"}) {
        auto inexact = util::json_parse(text);
        ASSERT_TRUE(inexact.has_value()) << text;
        EXPECT_TRUE(inexact.value().is_number()) << text;
        EXPECT_FALSE(inexact.value().is_u64()) << text;
    }
}

TEST(JsonParse, DecodesEscapesAndSurrogatePairs)
{
    auto parsed =
        util::json_parse("\"a\\u0041\\n\\t\\\\\\ud83d\\ude00\"");
    ASSERT_TRUE(parsed.has_value()) << parsed.status().to_string();
    EXPECT_EQ(parsed.value().string_value(),
              "aA\n\t\\\xF0\x9F\x98\x80");
}

TEST(JsonParse, RejectsMalformedInputWithTypedStatus)
{
    const char *cases[] = {
        "",            // empty
        "{",           // unterminated object
        "[1,]",        // trailing comma
        "{\"a\":}",    // missing value
        "nul",         // truncated keyword
        "01",          // leading zero
        "1 2",         // trailing garbage
        "\"\\q\"",     // bad escape
        "\"\\ud83d\"", // lone surrogate
        "{\"a\" 1}",   // missing colon
        "\"unterminated",
    };
    for (const char *text : cases) {
        auto parsed = util::json_parse(text);
        ASSERT_FALSE(parsed.has_value()) << "accepted: " << text;
        EXPECT_EQ(parsed.status().kind(), util::ErrorKind::CorruptData)
            << text;
    }
}

TEST(JsonParse, RejectsExcessiveNestingWithoutOverflow)
{
    std::string deep;
    for (std::size_t i = 0; i <= util::kJsonMaxDepth; ++i)
        deep += '[';
    for (std::size_t i = 0; i <= util::kJsonMaxDepth; ++i)
        deep += ']';
    auto parsed = util::json_parse(deep);
    ASSERT_FALSE(parsed.has_value());
    EXPECT_EQ(parsed.status().kind(), util::ErrorKind::CorruptData);

    std::string shallow = "[[[[1]]]]";
    EXPECT_TRUE(util::json_parse(shallow).has_value());
}

// --------------------------------------------------------------- frames

TEST(FrameCodec, RoundTripsPayloadsIncludingEmpty)
{
    auto [client, server] = connected_pair();
    for (const std::string &payload :
         {std::string(), std::string("{}"),
          std::string(100'000, 'x')}) {
        ASSERT_TRUE(send_frame(client, payload).ok());
        auto got = recv_frame(server);
        ASSERT_TRUE(got.has_value()) << got.status().to_string();
        EXPECT_EQ(got.value(), payload);
    }
}

TEST(FrameCodec, SenderRefusesOversizedPayloadWithoutWriting)
{
    auto [client, server] = connected_pair();
    util::Status refused =
        send_frame(client, std::string(64, 'x'), /*max_frame=*/16);
    EXPECT_EQ(refused.kind(), util::ErrorKind::InvalidArgument);
    // Nothing reached the peer: a small frame sent next is intact.
    ASSERT_TRUE(send_frame(client, "after").ok());
    auto got = recv_frame(server);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got.value(), "after");
}

TEST(FrameCodec, OversizedLengthPrefixIsCorruptDataNotAnAllocation)
{
    auto [client, server] = connected_pair();
    // A lying prefix: 0xffffffff bytes announced, none sent.
    const unsigned char header[4] = {0xff, 0xff, 0xff, 0xff};
    ASSERT_TRUE(net::send_all(client, header, sizeof(header)).ok());
    auto got = recv_frame(server);
    ASSERT_FALSE(got.has_value());
    EXPECT_EQ(got.status().kind(), util::ErrorKind::CorruptData);
}

TEST(FrameCodec, TruncatedHeaderIsCorruptData)
{
    auto [client, server] = connected_pair();
    const unsigned char half[2] = {0x10, 0x00};
    ASSERT_TRUE(net::send_all(client, half, sizeof(half)).ok());
    client.close(); // peer vanishes mid-header
    auto got = recv_frame(server);
    ASSERT_FALSE(got.has_value());
    EXPECT_EQ(got.status().kind(), util::ErrorKind::CorruptData);
}

TEST(FrameCodec, TruncatedPayloadIsCorruptData)
{
    auto [client, server] = connected_pair();
    const unsigned char header[4] = {100, 0, 0, 0}; // announces 100
    ASSERT_TRUE(net::send_all(client, header, sizeof(header)).ok());
    ASSERT_TRUE(net::send_all(client, "only ten b", 10).ok());
    client.close(); // peer vanishes mid-payload
    auto got = recv_frame(server);
    ASSERT_FALSE(got.has_value());
    EXPECT_EQ(got.status().kind(), util::ErrorKind::CorruptData);
}

TEST(FrameCodec, CleanCloseBetweenFramesIsConnectionClosed)
{
    auto [client, server] = connected_pair();
    client.close();
    auto got = recv_frame(server);
    ASSERT_FALSE(got.has_value());
    EXPECT_EQ(got.status().kind(), util::ErrorKind::ConnectionClosed);
}

// ------------------------------------------------------------------ hex

TEST(Hex, RoundTripsArbitraryBytes)
{
    std::string bytes;
    for (int i = 0; i < 256; ++i)
        bytes.push_back(static_cast<char>(i));
    const std::string hex = hex_encode(bytes);
    EXPECT_EQ(hex.size(), 512u);
    auto decoded = hex_decode(hex);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded.value(), bytes);
}

TEST(Hex, RejectsOddLengthAndNonHex)
{
    EXPECT_EQ(hex_decode("abc").status().kind(),
              util::ErrorKind::CorruptData);
    EXPECT_EQ(hex_decode("zz").status().kind(),
              util::ErrorKind::CorruptData);
    EXPECT_TRUE(hex_decode("AbCd").has_value()); // upper case accepted
}

// --------------------------------------------------------- typed errors

TEST(ErrorFrames, RoundTripEveryErrorKind)
{
    using util::ErrorKind;
    for (const ErrorKind kind :
         {ErrorKind::IoError, ErrorKind::NotFound,
          ErrorKind::CorruptData, ErrorKind::LockTimeout,
          ErrorKind::Interrupted, ErrorKind::InvalidArgument,
          ErrorKind::FaultInjected, ErrorKind::Internal,
          ErrorKind::Overloaded, ErrorKind::ShuttingDown,
          ErrorKind::ConnectionClosed, ErrorKind::CrashLoop}) {
        const std::string frame =
            render_error(util::Status(kind, "why it failed"));
        auto parsed = util::json_parse(frame);
        ASSERT_TRUE(parsed.has_value());
        const util::JsonValue &doc = parsed.value();
        EXPECT_EQ(doc.find("status")->string_value(), "error");
        auto decoded = util::error_kind_from_name(
            doc.find("kind")->string_value());
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(*decoded, kind);
        EXPECT_EQ(doc.find("message")->string_value(), "why it failed");
    }
    EXPECT_FALSE(util::error_kind_from_name("no_such_kind").has_value());
}

// ----------------------------------------------------- sigpipe hygiene

TEST(SigpipeHygiene, WritingToAHalfClosedSocketNeverKillsTheProcess)
{
    // The daemon and client both run install_signal_handlers(), which
    // ignores SIGPIPE process-wide; util::net sends additionally pass
    // MSG_NOSIGNAL.  Either layer alone suffices — this test proves
    // the combination: a peer that hangs up mid-conversation surfaces
    // as a typed ConnectionClosed (or a plain EPIPE for raw writes),
    // never as a process-killing signal.
    util::install_signal_handlers();
    auto [client, server] = connected_pair();
    server.close(); // peer vanishes

    // Push until the kernel notices the close; a small socket buffer
    // means a handful of sends at most.
    const std::string chunk(64 * 1024, 'p');
    util::Status last;
    for (int i = 0; i < 64 && last.ok(); ++i)
        last = net::send_all(client, chunk.data(), chunk.size());
    EXPECT_EQ(last.kind(), util::ErrorKind::ConnectionClosed);

    // A raw write bypassing MSG_NOSIGNAL relies on the SIG_IGN
    // disposition alone.  Reaching the EXPECT below *is* the test.
    errno = 0;
    (void)!::write(client.fd(), chunk.data(), chunk.size());
    EXPECT_TRUE(errno == EPIPE || errno == 0 || errno == ECONNRESET);
}

// ------------------------------------------------- truncated responses

TEST(TruncatedResponse, FrameCutMidBodyIsTypedAndRetryableNeverParsed)
{
    // A shard SIGKILLed mid-reply leaves the client holding a header
    // that promises more bytes than will ever arrive.  The client must
    // surface a typed CorruptData — worth a failover — and never hand
    // a partial JSON document to the parser.
    auto [client, server] = connected_pair();
    std::thread lying_server([&server = server] {
        auto request = recv_frame(server);
        ASSERT_TRUE(request.has_value());
        // Header announces 1000 bytes; only 12 follow before close.
        const unsigned char header[4] = {0xe8, 0x03, 0x00, 0x00};
        ASSERT_TRUE(net::send_all(server, header, sizeof(header)).ok());
        ASSERT_TRUE(net::send_all(server, "{\"status\":\"o", 12).ok());
        server.close();
    });
    auto response = call(client, build_ping_request());
    lying_server.join();
    ASSERT_FALSE(response.has_value());
    EXPECT_EQ(response.status().kind(), util::ErrorKind::CorruptData);
    EXPECT_TRUE(failover_worthy(response.status()))
        << "a truncated frame must reroute, not give up";
}

TEST(FailoverWorthy, ClassifiesShardFailuresVersusRequestVerdicts)
{
    using util::ErrorKind;
    using util::Status;
    // Shard-side failures reroute...
    EXPECT_TRUE(failover_worthy(Status(ErrorKind::ConnectionClosed, "")));
    EXPECT_TRUE(failover_worthy(Status(ErrorKind::IoError, "refused")));
    EXPECT_TRUE(failover_worthy(Status(ErrorKind::CorruptData, "cut")));
    EXPECT_TRUE(failover_worthy(Status(ErrorKind::ShuttingDown, "")));
    // ...request verdicts and fleet-wide load do not.
    EXPECT_FALSE(failover_worthy(Status(ErrorKind::InvalidArgument, "")));
    EXPECT_FALSE(failover_worthy(Status(ErrorKind::Overloaded, "")));
    EXPECT_FALSE(failover_worthy(Status(ErrorKind::Internal, "")));
    EXPECT_FALSE(failover_worthy(util::Status()));
}

// --------------------------------------------------- deadline receives

TEST(RecvFrameDeadline, ExpiresTypedInsteadOfParkingForever)
{
    auto [client, server] = connected_pair();
    // Nothing ever sent: the deadline must fire.
    auto got = recv_frame_deadline(server, kDefaultMaxFrameBytes, 50);
    ASSERT_FALSE(got.has_value());
    EXPECT_EQ(got.status().kind(), util::ErrorKind::IoError);

    // A frame already on the wire arrives well inside the deadline.
    ASSERT_TRUE(send_frame(client, "{\"type\":\"ping\"}").ok());
    auto ok = recv_frame_deadline(server, kDefaultMaxFrameBytes, 1'000);
    ASSERT_TRUE(ok.has_value()) << ok.status().to_string();
    EXPECT_EQ(ok.value(), "{\"type\":\"ping\"}");
}

// ------------------------------------------------------ latency recorder

TEST(LatencyRecorder, ExactQuantilesUnderCapacity)
{
    util::LatencyRecorder recorder(1024);
    for (int i = 1; i <= 100; ++i)
        recorder.add(static_cast<double>(i));
    EXPECT_EQ(recorder.count(), 100u);
    EXPECT_DOUBLE_EQ(recorder.min(), 1.0);
    EXPECT_DOUBLE_EQ(recorder.max(), 100.0);
    EXPECT_NEAR(recorder.p50(), 50.0, 1.0);
    EXPECT_NEAR(recorder.p99(), 99.0, 1.0);
    EXPECT_DOUBLE_EQ(recorder.quantile(0.0), 1.0);
}

TEST(LatencyRecorder, DecimatesPastCapacityButKeepsExtremes)
{
    util::LatencyRecorder recorder(64);
    for (int i = 0; i < 10'000; ++i)
        recorder.add(static_cast<double>(i % 1000));
    EXPECT_EQ(recorder.count(), 10'000u);
    EXPECT_DOUBLE_EQ(recorder.min(), 0.0);   // summary is not decimated
    EXPECT_DOUBLE_EQ(recorder.max(), 999.0);
    const double p50 = recorder.p50();
    EXPECT_GE(p50, 0.0);
    EXPECT_LE(p50, 999.0);
}

// -------------------------------------------------- injected net faults

class NetFaults : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        if (!fault::kEnabled)
            GTEST_SKIP() << "injector compiled out "
                            "(-DLEAKBOUND_FAULT_INJECTION=OFF)";
        fault::reset();
    }

    void TearDown() override
    {
        if (fault::kEnabled)
            fault::reset();
    }
};

TEST_F(NetFaults, ReadFaultSurfacesAsTypedStatus)
{
    auto [client, server] = connected_pair();
    ASSERT_TRUE(send_frame(client, "{}").ok());
    ASSERT_TRUE(fault::configure("net_read=1.0", 7));
    auto got = recv_frame(server);
    ASSERT_FALSE(got.has_value());
    EXPECT_EQ(got.status().kind(), util::ErrorKind::FaultInjected);
    fault::reset();
    // The injected failure consumed nothing: after clearing the spec
    // the frame is still intact on the wire.
    auto retry = recv_frame(server);
    ASSERT_TRUE(retry.has_value()) << retry.status().to_string();
    EXPECT_EQ(retry.value(), "{}");
}

TEST_F(NetFaults, WriteFaultSurfacesAsTypedStatus)
{
    auto [client, server] = connected_pair();
    ASSERT_TRUE(fault::configure("net_write=1.0", 7));
    util::Status sent = send_frame(client, "{}");
    EXPECT_EQ(sent.kind(), util::ErrorKind::FaultInjected);
}

TEST_F(NetFaults, AcceptFaultSurfacesAsTypedStatus)
{
    auto listener = net::listen_tcp("127.0.0.1", 0);
    ASSERT_TRUE(listener.has_value());
    auto client =
        net::connect_tcp("127.0.0.1", net::local_port(listener.value()));
    ASSERT_TRUE(client.has_value());
    ASSERT_TRUE(fault::configure("net_accept=1.0", 7));
    auto accepted = net::accept_connection(listener.value());
    ASSERT_FALSE(accepted.has_value());
    EXPECT_EQ(accepted.status().kind(), util::ErrorKind::FaultInjected);
}

TEST_F(NetFaults, ShortWritesNeverTruncateAFrame)
{
    // net_short_write=1.0 halves *every* write attempt: a 64 KiB
    // frame only gets through if send_all resumes from its offset
    // across ~17 successive truncations.  The frame must arrive
    // byte-identical — a short write is a retry condition, never data
    // loss.
    auto [client, server] = connected_pair();
    std::string big(64 * 1024, '\0');
    for (std::size_t i = 0; i < big.size(); ++i)
        big[i] = static_cast<char>('a' + i % 26);

    ASSERT_TRUE(fault::configure("net_short_write=1.0", 7));
    util::Status sent = send_frame(client, big);
    ASSERT_TRUE(sent.ok()) << sent.to_string();
    fault::reset();

    auto got = recv_frame(server, /*max_frame=*/1 << 20);
    ASSERT_TRUE(got.has_value()) << got.status().to_string();
    EXPECT_EQ(got.value().size(), big.size());
    EXPECT_TRUE(got.value() == big)
        << "frame corrupted by short-write resumption";
}
