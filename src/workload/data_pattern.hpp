/**
 * @file
 * Data-reference pattern generators for synthetic workloads.
 *
 * Each pattern yields a deterministic (seeded) stream of byte
 * addresses with a characteristic locality signature:
 *
 *  - Sequential  : streaming through a region (gzip buffers) — the
 *                  classic next-line-prefetchable pattern
 *  - Strided     : constant non-unit stride through an array (applu's
 *                  multidimensional sweeps) — stride-prefetchable
 *  - Random      : uniform within a working set (gcc hash tables) —
 *                  non-prefetchable
 *  - PointerChase: a fixed random permutation cycle (vortex's linked
 *                  structures) — non-prefetchable but repeatable
 *  - Stack       : small bounded random walk near a stack top —
 *                  highly local
 */

#ifndef LEAKBOUND_WORKLOAD_DATA_PATTERN_HPP
#define LEAKBOUND_WORKLOAD_DATA_PATTERN_HPP

#include <memory>
#include <vector>

#include "util/random.hpp"
#include "util/types.hpp"

namespace leakbound::workload {

/** A deterministic stream of data addresses. */
class DataPattern
{
  public:
    virtual ~DataPattern() = default;

    /** Next referenced byte address. */
    virtual Addr next() = 0;

    /**
     * Produce the next @p n addresses into @p out — exactly the stream
     * n calls to next() would yield.  Concrete patterns override this
     * with the same loop so next() devirtualizes inside it (they are
     * final classes); generators batch one fill() per basic-block span
     * instead of one virtual draw per memory op.
     */
    virtual void
    fill(Addr *out, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = next();
    }

    /** Restart the stream deterministically. */
    virtual void reset() = 0;

    /**
     * Append the pattern's mutable position to @p out and return true
     * when the pattern is deterministically periodic (the next address
     * is a pure function of the appended words).  Patterns that draw
     * from an RNG return false and append nothing; the analytic fast
     * path then falls back to plain simulation.
     */
    virtual bool
    append_state(std::vector<std::uint64_t> &out) const
    {
        (void)out;
        return false;
    }
};

/** Owning pattern handle. */
using DataPatternPtr = std::unique_ptr<DataPattern>;

/**
 * Streaming: base, base+step, base+2*step, ... wrapping at
 * base+region_bytes.
 */
DataPatternPtr make_sequential(Addr base, std::uint64_t region_bytes,
                               std::uint32_t step = 8);

/**
 * Strided array walk: elements of @p elem_bytes, advancing
 * @p stride_elems elements per reference, wrapping over @p elements.
 */
DataPatternPtr make_strided(Addr base, std::uint64_t elements,
                            std::uint32_t elem_bytes,
                            std::uint64_t stride_elems);

/** Uniform random within [base, base+region_bytes), @p align-aligned. */
DataPatternPtr make_random(Addr base, std::uint64_t region_bytes,
                           std::uint32_t align, std::uint64_t seed);

/**
 * Pointer chase over a fixed random permutation cycle of @p nodes
 * nodes of @p node_bytes each.
 */
DataPatternPtr make_pointer_chase(Addr base, std::uint64_t nodes,
                                  std::uint32_t node_bytes,
                                  std::uint64_t seed);

/**
 * Stack-like: bounded random walk within @p depth_bytes below
 * @p top, 8-byte aligned.
 */
DataPatternPtr make_stack(Addr top, std::uint64_t depth_bytes,
                          std::uint64_t seed);

} // namespace leakbound::workload

#endif // LEAKBOUND_WORKLOAD_DATA_PATTERN_HPP
