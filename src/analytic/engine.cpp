/**
 * @file
 * Implementation of the analytic fast path.
 */

#include "analytic/engine.hpp"

#include <algorithm>
#include <utility>

#include "util/logging.hpp"

namespace leakbound::analytic {

namespace {

/**
 * Minimum instruction spacing between checkpoints.  Signatures cost
 * O(cache frames) to build, so taking one per fetch group would swamp
 * short runs; 2048 keeps several checkpoints inside even the small
 * budgets the differential fuzzer uses.
 */
constexpr std::uint64_t kMinCheckpointInstrs = 2048;

/**
 * Give up detecting after this many checkpoints without a recurrence:
 * the run then completes as a plain simulation with no further
 * signature cost.  (Eligible workloads with huge recurrence periods
 * exist — e.g. pattern cycle lengths coprime to the loop period.)
 */
constexpr std::uint64_t kMaxCheckpoints = 4096;

/** k * (b - a), field-wise, for cache statistics. */
sim::CacheStats
scaled_stats_diff(const sim::CacheStats &b, const sim::CacheStats &a,
                  std::uint64_t k)
{
    sim::CacheStats out;
    out.accesses = k * (b.accesses - a.accesses);
    out.hits = k * (b.hits - a.hits);
    out.misses = k * (b.misses - a.misses);
    out.evictions = k * (b.evictions - a.evictions);
    return out;
}

} // namespace

std::optional<workload::AnalyticProfile>
analyzable_profile(const workload::Workload &workload,
                   const sim::HierarchyConfig &hierarchy, bool keep_raw)
{
    if (keep_raw)
        return std::nullopt; // raw interval lists cannot be extrapolated
    for (sim::ReplacementKind kind :
         {hierarchy.l1i.replacement, hierarchy.l1d.replacement,
          hierarchy.l2.replacement}) {
        if (kind == sim::ReplacementKind::Random)
            return std::nullopt; // victim choice draws an RNG
    }
    return workload.analytic_profile();
}

bool
is_analyzable(const workload::Workload &workload,
              const sim::HierarchyConfig &hierarchy, bool keep_raw)
{
    return analyzable_profile(workload, hierarchy, keep_raw).has_value();
}

PeriodicFastPath::PeriodicFastPath(const FastPathRefs &refs,
                                   std::uint64_t total_instructions,
                                   std::uint64_t period_instructions)
    : refs_(refs), total_(total_instructions)
{
    LEAKBOUND_ASSERT(refs_.workload && refs_.core && refs_.hierarchy &&
                         refs_.icollector && refs_.dcollector &&
                         refs_.imonitor && refs_.dmonitor && refs_.stride &&
                         refs_.isink && refs_.dsink,
                     "fast path is missing rig references");
    const std::uint64_t period =
        period_instructions ? period_instructions : 1;
    const std::uint64_t factor =
        std::max<std::uint64_t>(1, (kMinCheckpointInstrs + period - 1) /
                                       period);
    step_ = factor * period;
    next_target_ = step_;
}

cpu::InOrderCore::GroupHook
PeriodicFastPath::hook()
{
    return [this](const cpu::CoreRunStats &stats) {
        return on_checkpoint(stats);
    };
}

void
PeriodicFastPath::capture_signature(Cycle now,
                                    std::vector<std::uint64_t> &out) const
{
    // Fixed component order; every temporal value is appended as an
    // age relative to `now`, so signatures from different absolute
    // times compare equal iff the systems behave identically from here
    // on (up to the uniform time translation the warp applies).
    bool ok = refs_.workload->append_state(out);
    LEAKBOUND_ASSERT(ok, "eligible workload refused a state snapshot");
    refs_.core->append_state(out);
    ok = refs_.hierarchy->l1i().append_state(out) &&
         refs_.hierarchy->l1d().append_state(out) &&
         refs_.hierarchy->l2().append_state(out);
    LEAKBOUND_ASSERT(ok, "eligible cache refused a state snapshot");
    refs_.icollector->append_state(out, now);
    refs_.dcollector->append_state(out, now);
    if (refs_.l2collector)
        refs_.l2collector->append_state(out, now);
    refs_.imonitor->append_state(out, now);
    refs_.dmonitor->append_state(out, now);
    refs_.stride->append_state(out);
}

void
PeriodicFastPath::take_anchor(const cpu::CoreRunStats &stats)
{
    Anchor a{scratch_sig_,
             checkpoints_taken_,
             stats,
             refs_.hierarchy->l1i().stats(),
             refs_.hierarchy->l1d().stats(),
             refs_.hierarchy->l2().stats(),
             *refs_.isink,
             *refs_.dsink,
             refs_.l2sink
                 ? std::optional<interval::IntervalHistogramSet>(
                       *refs_.l2sink)
                 : std::nullopt};
    anchor_ = std::move(a);
}

bool
PeriodicFastPath::on_checkpoint(const cpu::CoreRunStats &stats)
{
    if (done_ || stats.instructions < next_target_)
        return true;
    next_target_ += step_;
    ++checkpoints_taken_;

    scratch_sig_.clear();
    capture_signature(stats.cycles, scratch_sig_);

    if (anchor_ && scratch_sig_ == anchor_->signature) {
        commit(stats);
        return !committed_; // stop the run iff periods were skipped
    }

    // Brent-style anchoring: move the anchor forward geometrically so
    // a recurrence of *any* period p is caught within O(p) checkpoints
    // even when the warm-up prefix is long.
    if (!anchor_ ||
        checkpoints_taken_ >= 2 * anchor_->checkpoint_index) {
        take_anchor(stats);
    }
    if (checkpoints_taken_ >= kMaxCheckpoints)
        done_ = true;
    return true;
}

void
PeriodicFastPath::commit(const cpu::CoreRunStats &stats)
{
    const Anchor &a = *anchor_;
    const std::uint64_t di = stats.instructions - a.core.instructions;
    const Cycles dc = stats.cycles - a.core.cycles;
    LEAKBOUND_ASSERT(di > 0, "recurrence with zero instruction delta");

    done_ = true;
    const std::uint64_t remaining = total_ - stats.instructions;
    const std::uint64_t k = remaining / di;
    if (k == 0)
        return; // less than one period left; nothing to skip

    // Histograms: the sinks currently hold the state at this
    // checkpoint (B); add k copies of the per-period growth (B - A).
    refs_.isink->add_scaled_diff(*refs_.isink, a.isink, k);
    refs_.dsink->add_scaled_diff(*refs_.dsink, a.dsink, k);
    if (refs_.l2sink)
        refs_.l2sink->add_scaled_diff(*refs_.l2sink, *a.l2sink, k);

    // Timestamps: proven state equality means every live timestamp was
    // refreshed within (A, B] (a stale one would have aged the
    // signature apart), so translating them all by k * dc is exact.
    const Cycles warp = k * dc;
    refs_.core->warp_cycles(warp);
    refs_.icollector->warp(warp);
    refs_.dcollector->warp(warp);
    if (refs_.l2collector)
        refs_.l2collector->warp(warp);
    refs_.imonitor->warp(warp);
    refs_.dmonitor->warp(warp);
    // Caches need no warp: replacement stamps are logical, and the
    // signature already proved their rank order recurs.

    skipped_core_.instructions = k * di;
    skipped_core_.cycles = warp;
    skipped_core_.fetch_groups =
        k * (stats.fetch_groups - a.core.fetch_groups);
    skipped_core_.loads = k * (stats.loads - a.core.loads);
    skipped_core_.stores = k * (stats.stores - a.core.stores);
    skipped_core_.instr_stall_cycles =
        k * (stats.instr_stall_cycles - a.core.instr_stall_cycles);
    skipped_core_.data_stall_cycles =
        k * (stats.data_stall_cycles - a.core.data_stall_cycles);
    skipped_l1i_ =
        scaled_stats_diff(refs_.hierarchy->l1i().stats(), a.l1i, k);
    skipped_l1d_ =
        scaled_stats_diff(refs_.hierarchy->l1d().stats(), a.l1d, k);
    skipped_l2_ =
        scaled_stats_diff(refs_.hierarchy->l2().stats(), a.l2, k);

    committed_ = true;
    util::debug("analytic: recurrence at ", stats.instructions,
                " instrs (period ", di, " instrs / ", dc,
                " cycles); skipping ", k, " periods");
}

cpu::CoreRunStats
PeriodicFastPath::finish(const cpu::CoreRunStats &s1)
{
    if (!committed_)
        return s1; // plain simulation already ran to completion

    const std::uint64_t executed =
        s1.instructions + skipped_core_.instructions;
    LEAKBOUND_ASSERT(executed <= total_, "skipped past the budget");
    const cpu::CoreRunStats s2 = refs_.core->run(total_ - executed);

    cpu::CoreRunStats out;
    out.instructions = executed + s2.instructions;
    out.cycles = s2.cycles; // absolute: the core's clock was warped
    out.fetch_groups = s1.fetch_groups + skipped_core_.fetch_groups +
                       s2.fetch_groups;
    out.loads = s1.loads + skipped_core_.loads + s2.loads;
    out.stores = s1.stores + skipped_core_.stores + s2.stores;
    out.instr_stall_cycles = s1.instr_stall_cycles +
                             skipped_core_.instr_stall_cycles +
                             s2.instr_stall_cycles;
    out.data_stall_cycles = s1.data_stall_cycles +
                            skipped_core_.data_stall_cycles +
                            s2.data_stall_cycles;
    return out;
}

void
PeriodicFastPath::add_skipped(sim::CacheStats &l1i, sim::CacheStats &l1d,
                              sim::CacheStats &l2) const
{
    auto add = [](sim::CacheStats &into, const sim::CacheStats &from) {
        into.accesses += from.accesses;
        into.hits += from.hits;
        into.misses += from.misses;
        into.evictions += from.evictions;
    };
    add(l1i, skipped_l1i_);
    add(l1d, skipped_l1d_);
    add(l2, skipped_l2_);
}

} // namespace leakbound::analytic
