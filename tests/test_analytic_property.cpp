/**
 * @file
 * Property tests over the analytic engine's output (histograms the
 * fast path produced by committing a period skip):
 *
 *  - Oracle dominance: the Fig. 5 envelope evaluated on analytic
 *    histograms still lower-bounds every stock policy — the theorem
 *    does not care which engine produced the population, and this
 *    pins that down on actual fast-path output.
 *  - Monotonicity in associativity: with the set count fixed, LRU has
 *    the inclusion property, so growing ways can never add misses;
 *    analytic runs must inherit that ordering exactly.
 *  - Classifier soundness: over a corpus mixing eligible and
 *    ineligible (random trips, RNG replacement, keep_raw) cases, the
 *    classifier never claims a workload whose analytic result would
 *    differ from simulation — and the corpus provably exercises both
 *    the commit and the fallback paths.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "analytic/engine.hpp"
#include "core/artifact_cache.hpp"
#include "core/experiment.hpp"
#include "core/inflection.hpp"
#include "core/policies.hpp"
#include "core/savings.hpp"
#include "power/technology.hpp"
#include "workload/spec_suite.hpp"

using namespace leakbound;
using namespace leakbound::core;

namespace {

/** Every stock policy of core/policies.hpp under @p model. */
std::vector<PolicyPtr>
policy_zoo(const EnergyModel &model)
{
    const InflectionPoints points = compute_inflection(model);
    const std::vector<interval::PrefetchClass> both = {
        interval::PrefetchClass::NextLine,
        interval::PrefetchClass::Stride};
    std::vector<PolicyPtr> zoo;
    zoo.push_back(make_always_active(model));
    zoo.push_back(make_opt_drowsy(model));
    zoo.push_back(make_opt_sleep(model, points.drowsy_sleep));
    zoo.push_back(make_opt_sleep(model, 10'000));
    zoo.push_back(make_decay_sleep(model, 10'000));
    zoo.push_back(make_decay_sleep(model, 2'000));
    zoo.push_back(make_hybrid(model, points.drowsy_sleep));
    zoo.push_back(make_hybrid(model, 4'000));
    zoo.push_back(make_opt_hybrid(model));
    zoo.push_back(make_periodic_drowsy(model, 2'000));
    zoo.push_back(make_periodic_drowsy(model, 32'000));
    zoo.push_back(make_prefetch(model, PrefetchVariant::A, both));
    zoo.push_back(make_prefetch(model, PrefetchVariant::B, both));
    zoo.push_back(make_prefetch_blend(model, 3'000, both));
    return zoo;
}

/** One committed analytic run of @p name (asserts the commit). */
ExperimentResult
analytic_run(const std::string &name, std::uint64_t instructions)
{
    ExperimentConfig config;
    config.instructions = instructions;
    config.extra_edges = standard_extra_edges();
    config.engine = Engine::Analytic;
    auto w = workload::make_benchmark(name);
    ExperimentResult run = run_experiment(*w, config);
    EXPECT_TRUE(run.analytic)
        << name << ": fast path fell back; property would be vacuous";
    return run;
}

} // namespace

TEST(AnalyticProperty, OracleDominatesOnAnalyticHistograms)
{
    // ~3 benchmarks x 4 nodes x 14 policies, on histograms the fast
    // path actually extrapolated (not merely simulated).
    for (const char *name : {"stream", "stencil", "chase"}) {
        const ExperimentResult run = analytic_run(name, 400'000);
        for (power::TechNode node : power::all_nodes()) {
            const EnergyModel model(power::node_params(node));
            const auto envelope = make_opt_hybrid(model);
            const Energy oracle =
                evaluate_policy(*envelope, run.dcache.intervals).total;
            for (const PolicyPtr &policy : policy_zoo(model)) {
                const SavingsResult r =
                    evaluate_policy(*policy, run.dcache.intervals);
                const double slack =
                    1e-9 * std::max(1.0, std::abs(r.total));
                EXPECT_LE(oracle, r.total + slack)
                    << policy->name() << " beats the oracle on " << name
                    << " at " << power::node_params(node).name;
            }
        }
    }
}

TEST(AnalyticProperty, MissesMonotoneInAssociativity)
{
    // Fixed set count, growing ways: LRU's inclusion property says the
    // bigger cache's contents are a superset at every access, so both
    // L1 miss counts are non-increasing.  The analytic engine commits
    // on each geometry and must reproduce the ordering exactly.
    for (const char *name : {"stream", "stencil", "chase"}) {
        std::uint64_t prev_imisses = ~0ull;
        std::uint64_t prev_dmisses = ~0ull;
        for (std::uint32_t ways : {1u, 2u, 4u, 8u}) {
            ExperimentConfig config;
            config.instructions = 200'000;
            config.engine = Engine::Analytic;
            // 64 sets x 64B lines, per-way size scaling with ways.
            for (sim::CacheConfig *level :
                 {&config.hierarchy.l1i, &config.hierarchy.l1d}) {
                level->line_bytes = 64;
                level->associativity = ways;
                level->size_bytes = 64ull * 64 * ways;
            }
            auto w = workload::make_benchmark(name);
            const ExperimentResult run = run_experiment(*w, config);
            EXPECT_TRUE(run.analytic) << name << " ways=" << ways;
            EXPECT_LE(run.icache.stats.misses, prev_imisses)
                << name << " ways=" << ways;
            EXPECT_LE(run.dcache.stats.misses, prev_dmisses)
                << name << " ways=" << ways;
            prev_imisses = run.icache.stats.misses;
            prev_dmisses = run.dcache.stats.misses;
        }
    }
}

TEST(AnalyticProperty, ClassifierNeverClaimsAWorkloadItGetsWrong)
{
    // Mixed corpus: eligible benchmarks, random-trip benchmarks, an
    // RNG-replacement geometry and a keep_raw run.  For every entry,
    // Engine::Auto must produce bytes identical to Engine::Sim — i.e.
    // either the classifier declined, or the fast path was exact.
    struct Entry
    {
        std::string name;
        bool keep_raw;
        sim::ReplacementKind l1d_repl;
    };
    const std::vector<Entry> corpus = {
        {"stream", false, sim::ReplacementKind::Lru},
        {"stencil", false, sim::ReplacementKind::Lru},
        {"chase", false, sim::ReplacementKind::Lru},
        {"gzip", false, sim::ReplacementKind::Lru},
        {"ammp", false, sim::ReplacementKind::Lru},
        {"stream", false, sim::ReplacementKind::Random},
        {"stream", true, sim::ReplacementKind::Lru},
    };

    std::uint64_t commits = 0;
    std::uint64_t fallbacks = 0;
    for (const Entry &entry : corpus) {
        ExperimentConfig config;
        config.instructions = 60'000;
        config.keep_raw = entry.keep_raw;
        config.hierarchy.l1d.replacement = entry.l1d_repl;

        ExperimentConfig auto_config = config;
        auto_config.engine = Engine::Auto;
        auto wa = workload::make_benchmark(entry.name);
        const ExperimentResult a = run_experiment(*wa, auto_config);

        ExperimentConfig sim_config = config;
        sim_config.engine = Engine::Sim;
        auto ws = workload::make_benchmark(entry.name);
        const ExperimentResult s = run_experiment(*ws, sim_config);

        EXPECT_EQ(serialize_result(a), serialize_result(s))
            << entry.name << " keep_raw=" << entry.keep_raw;
        EXPECT_FALSE(s.analytic);
        (a.analytic ? commits : fallbacks) += 1;

        // Ineligible configurations must be declined up front.
        auto wc = workload::make_benchmark(entry.name);
        if (entry.keep_raw ||
            entry.l1d_repl == sim::ReplacementKind::Random) {
            EXPECT_FALSE(analytic::is_analyzable(
                *wc, config.hierarchy, config.keep_raw))
                << entry.name;
        }
    }
    // The corpus must exercise both routes, or the equality above
    // proves nothing about the classifier.
    EXPECT_GT(commits, 0u);
    EXPECT_GT(fallbacks, 0u);
}
