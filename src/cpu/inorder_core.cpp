/**
 * @file
 * Implementation of the in-order timing core: construction, config
 * validation, and the virtual-listener entry points (the run loop
 * itself is the template in the header).
 */

#include "cpu/inorder_core.hpp"

#include "util/logging.hpp"

namespace leakbound::cpu {

namespace {

/** Routes the templated run loop onto the virtual AccessListener. */
struct VirtualListener
{
    AccessListener *listener;

    void
    on_instr(Cycle cycle, Pc pc, const sim::HierarchyResult &result)
    {
        if (listener)
            listener->on_instr_access(cycle, pc, result);
    }

    void
    on_data(Cycle cycle, Pc pc, Addr addr, bool is_store,
            const sim::HierarchyResult &result)
    {
        if (listener)
            listener->on_data_access(cycle, pc, addr, is_store, result);
    }

    void on_group_end() {}
};

} // namespace

util::Status
CoreConfig::validate() const
{
    if (fetch_width == 0) {
        return util::Status(util::ErrorKind::InvalidArgument,
                            "fetch width must be at least 1");
    }
    return util::Status();
}

InOrderCore::InOrderCore(const CoreConfig &config, sim::Hierarchy *hierarchy,
                         workload::Workload *source,
                         AccessListener *listener)
    : config_(config), hierarchy_(hierarchy), source_(source),
      listener_(listener)
{
    LEAKBOUND_ASSERT(hierarchy_ != nullptr, "core needs a hierarchy");
    LEAKBOUND_ASSERT(source_ != nullptr, "core needs a workload");
    const util::Status status = config_.validate();
    if (!status.ok())
        throw util::StatusError(status);
}

CoreRunStats
InOrderCore::run(std::uint64_t max_instructions)
{
    return run(max_instructions, GroupHook());
}

CoreRunStats
InOrderCore::run(std::uint64_t max_instructions, const GroupHook &hook)
{
    VirtualListener listener{listener_};
    return run_loop(max_instructions, hook, listener);
}

} // namespace leakbound::cpu
