/**
 * @file
 * gem5-style status and error reporting.
 *
 * Severity model follows the gem5 convention:
 *   - panic():  an internal invariant was violated; this is a leakbound
 *               bug.  Aborts (may dump core).
 *   - fatal():  the *user* asked for something impossible (bad config,
 *               inconsistent parameters).  Prints a clean message and
 *               exits with status 2 — never aborts, never dumps core.
 *   - warn():   something is suspicious but simulation can continue.
 *   - inform(): neutral progress/status messages.
 *
 * All functions accept printf-free, iostream-free std::format-like usage
 * via a simple string assembly helper to keep call sites terse.
 */

#ifndef LEAKBOUND_UTIL_LOGGING_HPP
#define LEAKBOUND_UTIL_LOGGING_HPP

#include <sstream>
#include <string>
#include <string_view>

namespace leakbound::util {

/** Verbosity levels for inform() output. */
enum class Verbosity {
    Quiet,   ///< only warnings and errors
    Normal,  ///< default: progress messages
    Debug,   ///< everything, including per-phase detail
};

/** Set the process-wide verbosity for inform()/debug(). */
void set_verbosity(Verbosity v);

/** Current process-wide verbosity. */
Verbosity verbosity();

/** @return true if debug-level messages are enabled. */
bool debug_enabled();

namespace detail {

/** Concatenate arbitrary streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panic_impl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatal_impl(const std::string &msg);
void warn_impl(const std::string &msg);
void inform_impl(const std::string &msg);
void debug_impl(const std::string &msg);

} // namespace detail

/** Report an internal bug and abort. */
template <typename... Args>
[[noreturn]] void
panic_at(const char *file, int line, Args &&...args)
{
    detail::panic_impl(file, line, detail::concat(std::forward<Args>(args)...));
}

/** Exit status used by fatal() for user errors. */
inline constexpr int kFatalExitCode = 2;

/** Report a user error and exit cleanly with kFatalExitCode. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatal_impl(detail::concat(std::forward<Args>(args)...));
}

/** Report a recoverable anomaly. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warn_impl(detail::concat(std::forward<Args>(args)...));
}

/** Report neutral status (suppressed under Verbosity::Quiet). */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::inform_impl(detail::concat(std::forward<Args>(args)...));
}

/** Report debug detail (shown only under Verbosity::Debug). */
template <typename... Args>
void
debug(Args &&...args)
{
    if (debug_enabled())
        detail::debug_impl(detail::concat(std::forward<Args>(args)...));
}

/** panic() with source location captured automatically. */
#define LEAKBOUND_PANIC(...) \
    ::leakbound::util::panic_at(__FILE__, __LINE__, __VA_ARGS__)

/** Assert an internal invariant; panics with the condition text on failure. */
#define LEAKBOUND_ASSERT(cond, ...)                                         \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::leakbound::util::panic_at(__FILE__, __LINE__,                 \
                "assertion failed: " #cond " ", ##__VA_ARGS__);             \
        }                                                                   \
    } while (0)

} // namespace leakbound::util

#endif // LEAKBOUND_UTIL_LOGGING_HPP
