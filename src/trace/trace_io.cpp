/**
 * @file
 * Implementation of block-buffered binary trace IO.
 */

#include "trace/trace_io.hpp"

#include <cstring>

#include "util/logging.hpp"

namespace leakbound::trace {

TraceWriter::TraceWriter(const std::string &path)
    : file_(std::fopen(path.c_str(), "wb"))
{
    if (!file_)
        util::fatal("cannot create trace file: ", path);
    if (std::fwrite(kTraceMagic, 1, sizeof(kTraceMagic), file_) !=
        sizeof(kTraceMagic))
        util::fatal("cannot write trace header: ", path);
    buffer_.reserve(kBlockRecords * kTraceRecordBytes);
}

TraceWriter::~TraceWriter()
{
    if (file_) {
        flush();
        std::fclose(file_);
    }
}

void
TraceWriter::write(const TimedAccess &rec)
{
    unsigned char encoded[kTraceRecordBytes];
    encode_record(rec, encoded);
    buffer_.insert(buffer_.end(), encoded, encoded + kTraceRecordBytes);
    ++count_;
    if (buffer_.size() >= kBlockRecords * kTraceRecordBytes)
        flush();
}

void
TraceWriter::flush()
{
    if (buffer_.empty())
        return;
    if (std::fwrite(buffer_.data(), 1, buffer_.size(), file_) !=
        buffer_.size())
        util::fatal("short write to trace file");
    buffer_.clear();
}

TraceReader::TraceReader(const std::string &path)
    : file_(std::fopen(path.c_str(), "rb"))
{
    if (!file_)
        util::fatal("cannot open trace file: ", path);
    char magic[sizeof(kTraceMagic)];
    if (std::fread(magic, 1, sizeof(magic), file_) != sizeof(magic) ||
        std::memcmp(magic, kTraceMagic, sizeof(kTraceMagic)) != 0) {
        util::fatal("not a leakbound trace file: ", path);
    }
    buffer_.resize(kBlockRecords * kTraceRecordBytes);
}

TraceReader::~TraceReader()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceReader::refill()
{
    // Move any partial record left at the tail to the front, then top
    // the block up.  Records never straddle a refill boundary from the
    // decoder's point of view.
    const std::size_t leftover = avail_ - pos_;
    if (leftover > 0)
        std::memmove(buffer_.data(), buffer_.data() + pos_, leftover);
    pos_ = 0;
    avail_ = leftover;
    const std::size_t got = std::fread(buffer_.data() + avail_, 1,
                                       buffer_.size() - avail_, file_);
    avail_ += got;
    return avail_ - pos_ >= kTraceRecordBytes;
}

bool
TraceReader::next(TimedAccess &rec)
{
    if (avail_ - pos_ < kTraceRecordBytes && !refill())
        return false;
    decode_record(buffer_.data() + pos_, rec);
    pos_ += kTraceRecordBytes;
    ++count_;
    return true;
}

} // namespace leakbound::trace
