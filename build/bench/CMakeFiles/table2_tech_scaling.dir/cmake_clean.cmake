file(REMOVE_RECURSE
  "CMakeFiles/table2_tech_scaling.dir/table2_tech_scaling.cpp.o"
  "CMakeFiles/table2_tech_scaling.dir/table2_tech_scaling.cpp.o.d"
  "table2_tech_scaling"
  "table2_tech_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_tech_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
