/**
 * @file
 * Implementation of the stride predictor.
 */

#include "prefetch/stride.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace leakbound::prefetch {

StridePredictor::StridePredictor(const StrideConfig &config)
    : config_(config)
{
    if (config_.table_entries == 0) {
        // Unbounded mode starts empty and grows on demand (handled in
        // slot_for via chaining on the vector); reserve a little.
        table_.reserve(1 << 12);
    } else {
        LEAKBOUND_ASSERT(
            (config_.table_entries & (config_.table_entries - 1)) == 0,
            "stride table entries must be a power of two");
        table_.resize(config_.table_entries);
    }
}

StridePredictor::Entry &
StridePredictor::slot_for(Pc pc)
{
    if (config_.table_entries != 0) {
        return table_[(pc >> 2) & (config_.table_entries - 1)];
    }
    // Unbounded: linear search (test/limit-study use only).
    for (auto &e : table_) {
        if (e.valid && e.tag == pc)
            return e;
    }
    table_.emplace_back();
    return table_.back();
}

bool
StridePredictor::access(Pc pc, Addr addr, std::uint32_t line_bytes)
{
    ++observed_;
    Entry &e = slot_for(pc);

    bool predicted = false;
    if (e.valid && e.tag == pc) {
        const std::int64_t stride =
            static_cast<std::int64_t>(addr) -
            static_cast<std::int64_t>(e.last_addr);
        // Prediction check happens against the state *before* this
        // access: the predictor would have issued last_addr + stride.
        if (e.confidence >= config_.confirmations && stride == e.stride) {
            const Addr predicted_addr =
                static_cast<Addr>(static_cast<std::int64_t>(e.last_addr) +
                                  e.stride);
            predicted = (predicted_addr / line_bytes) == (addr / line_bytes);
        }
        // Learn.
        if (stride == e.stride) {
            if (e.confidence < ~0u)
                ++e.confidence;
        } else {
            e.stride = stride;
            e.confidence = 1;
        }
        e.last_addr = addr;
    } else {
        // Cold or conflicting entry: claim it.
        e.valid = true;
        e.tag = pc;
        e.last_addr = addr;
        e.stride = 0;
        e.confidence = 0;
    }

    if (predicted)
        ++covered_;
    return predicted;
}

void
StridePredictor::append_state(std::vector<std::uint64_t> &out) const
{
    // Bounded tables have a fixed layout; the unbounded table's order
    // is the (deterministic) first-touch order of the PCs, so the raw
    // layout is already canonical for a deterministic stream.
    out.push_back(table_.size());
    for (const Entry &e : table_) {
        out.push_back(e.valid ? 1 : 0);
        out.push_back(e.tag);
        out.push_back(e.last_addr);
        out.push_back(static_cast<std::uint64_t>(e.stride));
        // Confidence influences behavior only through the
        // `confidence >= confirmations` test (a repeat increments, a
        // break resets to 1 regardless of the old value), so values at
        // or above the threshold are behaviorally interchangeable.
        // Clamping keeps a steadily-confirming entry from aging the
        // signature apart forever.
        out.push_back(std::min<std::uint64_t>(e.confidence,
                                              config_.confirmations));
    }
}

void
StridePredictor::reset()
{
    const StrideConfig config = config_;
    *this = StridePredictor(config);
}

} // namespace leakbound::prefetch
