/**
 * @file
 * Workload abstraction: a deterministic generator of the dynamic
 * instruction stream (PCs + data addresses) that the timing core
 * executes.  Synthetic programs (loop nests, call graphs) and trace
 * replays all implement this interface.
 */

#ifndef LEAKBOUND_WORKLOAD_WORKLOAD_HPP
#define LEAKBOUND_WORKLOAD_WORKLOAD_HPP

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "trace/record.hpp"

namespace leakbound::workload {

/**
 * Static facts about a workload that make it eligible for the analytic
 * fast path (src/analytic): the instruction stream is a deterministic,
 * eventually-periodic function of a finite mutable state that the
 * workload can expose via append_state().
 */
struct AnalyticProfile
{
    /**
     * Structural period of the endless top-level loop, in emitted
     * instructions.  State recurrence is only *likely* at multiples of
     * this; the fast path verifies full state equality before acting.
     */
    std::uint64_t period_instructions = 0;
};

/** A generator of dynamic instructions. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Benchmark name (e.g. "gzip"). */
    virtual std::string name() const = 0;

    /**
     * Produce the next dynamic instruction.  @return false when the
     * stream is exhausted (synthetic programs are typically endless;
     * the core bounds execution by instruction count).
     */
    virtual bool next(trace::MicroOp &op) = 0;

    /**
     * Produce up to @p max instructions into @p out, returning the
     * number produced (0 = exhausted).  The batch is *exactly* the
     * stream next() would produce — one virtual call amortized over a
     * block instead of one per µop (the simulation kernel's fetch ring
     * refills through this; see DESIGN.md "Simulation kernel").  The
     * default forwards to next() one op at a time; generators with
     * cheap inner loops override it with a block-filling loop.
     */
    virtual std::size_t
    next_batch(trace::MicroOp *out, std::size_t max)
    {
        std::size_t got = 0;
        while (got < max && next(out[got]))
            ++got;
        return got;
    }

    /** Restart the stream deterministically from the beginning. */
    virtual void reset() = 0;

    /**
     * The workload's analytic profile, or nullopt when the stream is
     * not a deterministic function of exposable finite state (random
     * trip counts, RNG-driven data patterns, phase interleaving...).
     * Returning a profile is a *claim of determinism* the analytic
     * engine relies on — append_state() must then capture everything
     * the future stream depends on.
     */
    virtual std::optional<AnalyticProfile>
    analytic_profile() const
    {
        return std::nullopt;
    }

    /**
     * Append the workload's full mutable state to @p out; @return false
     * (appending nothing useful) when the workload does not support
     * analytic snapshots.  Must return true whenever analytic_profile()
     * returns a profile.
     */
    virtual bool
    append_state(std::vector<std::uint64_t> &out) const
    {
        (void)out;
        return false;
    }
};

/** Owning workload handle. */
using WorkloadPtr = std::unique_ptr<Workload>;

/**
 * Round-robin phase interleaver: runs each child for its quantum of
 * instructions, then moves to the next, looping forever.  Used to give
 * benchmarks multi-phase behaviour (e.g. parse vs optimize phases),
 * which creates the very long cross-phase idle intervals the 180nm
 * results depend on.
 */
class CompositeWorkload final : public Workload
{
  public:
    /** One phase: a child workload and its per-visit quantum. */
    struct Phase
    {
        WorkloadPtr child;
        std::uint64_t quantum;
    };

    CompositeWorkload(std::string name, std::vector<Phase> phases);

    std::string name() const override { return name_; }
    bool next(trace::MicroOp &op) override;
    std::size_t next_batch(trace::MicroOp *out, std::size_t max) override;
    void reset() override;

  private:
    std::string name_;
    std::vector<Phase> phases_;
    std::size_t current_ = 0;
    std::uint64_t executed_in_phase_ = 0;
};

} // namespace leakbound::workload

#endif // LEAKBOUND_WORKLOAD_WORKLOAD_HPP
