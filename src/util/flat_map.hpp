/**
 * @file
 * Open-addressing hash map from u64 keys to u64 values, tuned for the
 * hot per-block bookkeeping tables (last-access times, stride state).
 * Linear probing with power-of-two capacity and automatic growth at
 * 70% load; ~4x faster than std::unordered_map on this access pattern
 * and allocation-free per operation after warm-up.
 *
 * The slot-index hash is a policy parameter.  FibonacciHash (the
 * FlatMap default) scatters arbitrary key distributions uniformly;
 * LocalityHash maps adjacent keys to adjacent slots for tables whose
 * keys arrive in dense sequential runs — the next-line monitor reads
 * block-1 and writes block on every access, and with a scattering
 * hash those two probes are two random cache lines per event (the
 * dominant cost of the simulation kernel's observation chain, measured
 * by BM_FlatMapPutGet vs the end-to-end pipeline).
 *
 * The all-ones key is reserved as the empty sentinel (block numbers
 * and PCs never reach it).
 */

#ifndef LEAKBOUND_UTIL_FLAT_MAP_HPP
#define LEAKBOUND_UTIL_FLAT_MAP_HPP

#include <cstdint>
#include <vector>

#include "util/logging.hpp"

namespace leakbound::util {

/** Fibonacci multiplicative hash: uniform scatter for arbitrary keys. */
struct FibonacciHash
{
    static std::size_t
    hash(std::uint64_t key)
    {
        return static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ULL) >> 17);
    }
};

/**
 * Locality-preserving hash: key and key±1 land in adjacent slots (one
 * cache line covers four), so sequential key runs stream instead of
 * scattering.  The folded high bits are Fibonacci-scrambled so large
 * power-of-two key strides still spread over the table instead of
 * collapsing onto one probe chain; only strides below 2^12 index
 * untouched, and those are narrower than any table this map backs.
 */
struct LocalityHash
{
    static std::size_t
    hash(std::uint64_t key)
    {
        return static_cast<std::size_t>(
            key + ((key >> 12) * 0x9e3779b97f4a7c15ULL >> 32));
    }
};

/** u64 -> u64 linear-probing hash map over a slot-hash policy. */
template <typename Hash = FibonacciHash>
class BasicFlatMap
{
  public:
    /** @param initial_capacity rounded up to a power of two (min 16). */
    explicit BasicFlatMap(std::size_t initial_capacity = 1 << 16)
    {
        std::size_t cap = 16;
        while (cap < initial_capacity)
            cap <<= 1;
        slots_.assign(cap, Slot{});
        mask_ = cap - 1;
    }

    /** Insert or overwrite. */
    void
    put(std::uint64_t key, std::uint64_t value)
    {
        LEAKBOUND_ASSERT(key != kEmpty, "reserved key");
        if ((size_ + 1) * 10 > slots_.size() * 7)
            grow();
        Slot &s = probe(key);
        if (s.key == kEmpty) {
            s.key = key;
            ++size_;
        }
        s.value = value;
    }

    /** Fetch into @p value; false when absent. */
    bool
    get(std::uint64_t key, std::uint64_t &value) const
    {
        LEAKBOUND_ASSERT(key != kEmpty, "reserved key");
        const Slot &s = const_cast<BasicFlatMap *>(this)->probe(key);
        if (s.key == kEmpty)
            return false;
        value = s.value;
        return true;
    }

    /** Fetch-or-default. */
    std::uint64_t
    get_or(std::uint64_t key, std::uint64_t fallback) const
    {
        std::uint64_t v;
        return get(key, v) ? v : fallback;
    }

    /** True when the key is present. */
    bool
    contains(std::uint64_t key) const
    {
        std::uint64_t v;
        return get(key, v);
    }

    /** Number of stored keys. */
    std::size_t size() const { return size_; }

    /**
     * Visit every (key, value) pair in unspecified (slot) order.
     * @param fn invoked as fn(key, value).
     */
    template <typename Fn>
    void
    for_each(Fn &&fn) const
    {
        for (const Slot &s : slots_)
            if (s.key != kEmpty)
                fn(s.key, s.value);
    }

    /**
     * Visit every pair with a mutable value reference, in unspecified
     * order.  @param fn invoked as fn(key, value&); keys are immutable.
     */
    template <typename Fn>
    void
    for_each_mut(Fn &&fn)
    {
        for (Slot &s : slots_)
            if (s.key != kEmpty)
                fn(s.key, s.value);
    }

    /** Drop everything, keeping capacity. */
    void
    clear()
    {
        for (auto &s : slots_)
            s = Slot{};
        size_ = 0;
    }

  private:
    static constexpr std::uint64_t kEmpty = ~static_cast<std::uint64_t>(0);

    struct Slot
    {
        std::uint64_t key = kEmpty;
        std::uint64_t value = 0;
    };

    Slot &
    probe(std::uint64_t key)
    {
        std::size_t i = Hash::hash(key) & mask_;
        for (;;) {
            Slot &s = slots_[i];
            if (s.key == key || s.key == kEmpty)
                return s;
            i = (i + 1) & mask_;
        }
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(old.size() * 2, Slot{});
        mask_ = slots_.size() - 1;
        size_ = 0;
        for (const Slot &s : old) {
            if (s.key != kEmpty) {
                Slot &dst = probe(s.key);
                dst = s;
                ++size_;
            }
        }
    }

    std::vector<Slot> slots_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

/** The default map (uniform scatter). */
using FlatMap = BasicFlatMap<FibonacciHash>;

/** Sequential-run-friendly map (see LocalityHash). */
using LocalityFlatMap = BasicFlatMap<LocalityHash>;

} // namespace leakbound::util

#endif // LEAKBOUND_UTIL_FLAT_MAP_HPP
