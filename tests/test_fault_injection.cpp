/**
 * @file
 * Tests of the deterministic fault injector and of end-to-end chaos
 * behaviour: injected IO faults may only degrade the artifact cache or
 * retry jobs — surviving results must stay byte-identical to a
 * fault-free run — and a given (seed, spec) must replay the same fault
 * pattern every time.
 *
 * This file carries the `chaos` CTest label.  It compiles in every
 * configuration but skips itself when the injector is compiled out
 * (the default; configure with -DLEAKBOUND_FAULT_INJECTION=ON or use
 * the `chaos` preset).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/artifact_cache.hpp"
#include "core/experiment.hpp"
#include "util/fault_injection.hpp"
#include "util/status.hpp"
#include "workload/spec_suite.hpp"

using namespace leakbound;
using namespace leakbound::core;
namespace fault = leakbound::util::fault;
namespace fs = std::filesystem;

namespace {

class FaultInjection : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        if (!fault::kEnabled)
            GTEST_SKIP() << "injector compiled out "
                            "(-DLEAKBOUND_FAULT_INJECTION=OFF)";
        fault::reset();
    }

    void TearDown() override { fault::reset(); }
};

std::string
fresh_dir(const char *name)
{
    const std::string dir = ::testing::TempDir() + name;
    fs::remove_all(dir);
    return dir;
}

ExperimentResult
sample_result()
{
    ExperimentConfig config;
    config.instructions = 20'000;
    auto workload = workload::make_benchmark("gzip");
    return run_experiment(*workload, config);
}

} // namespace

TEST_F(FaultInjection, SameSeedAndSpecReplaysTheSamePattern)
{
    std::vector<bool> first;
    ASSERT_TRUE(fault::configure("short_write=0.5", 1234));
    for (int i = 0; i < 200; ++i)
        first.push_back(fault::should_fail(fault::Site::ShortWrite));
    const std::uint64_t fired =
        fault::injected_count(fault::Site::ShortWrite);
    // A 0.5 rate over 200 draws fires a nontrivial number of times.
    EXPECT_GT(fired, 50u);
    EXPECT_LT(fired, 150u);
    EXPECT_EQ(fault::total_injected(), fired);

    ASSERT_TRUE(fault::configure("short_write=0.5", 1234));
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(fault::should_fail(fault::Site::ShortWrite), first[i])
            << "draw " << i;

    // A different seed diverges somewhere in the sequence.
    ASSERT_TRUE(fault::configure("short_write=0.5", 99));
    bool diverged = false;
    for (int i = 0; i < 200; ++i)
        diverged |=
            fault::should_fail(fault::Site::ShortWrite) != first[i];
    EXPECT_TRUE(diverged);
}

TEST_F(FaultInjection, RateBoundsAndSiteSelectionAreExact)
{
    ASSERT_TRUE(fault::configure("open_read=1,open_write=0", 7));
    for (int i = 0; i < 50; ++i) {
        EXPECT_TRUE(fault::should_fail(fault::Site::OpenRead));
        EXPECT_FALSE(fault::should_fail(fault::Site::OpenWrite));
        // Sites with no rule never fire and never burn a draw.
        EXPECT_FALSE(fault::should_fail(fault::Site::Lock));
    }
    EXPECT_EQ(fault::injected_count(fault::Site::OpenRead), 50u);
    EXPECT_EQ(fault::injected_count(fault::Site::OpenWrite), 0u);
    EXPECT_EQ(fault::injected_count(fault::Site::Lock), 0u);
}

TEST_F(FaultInjection, MatchFilterRestrictsToTaggedProbes)
{
    ASSERT_TRUE(fault::configure("simulate@ammp=1", 7));
    for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(fault::should_fail(fault::Site::Simulate, "ammp"));
        EXPECT_FALSE(fault::should_fail(fault::Site::Simulate, "gzip"));
        EXPECT_FALSE(fault::should_fail(fault::Site::Simulate));
    }
    // The filter is substring containment (paths carry directories).
    EXPECT_TRUE(
        fault::should_fail(fault::Site::Simulate, "cache/ammp.lbx"));
}

TEST_F(FaultInjection, MalformedSpecsAreRejectedAtomically)
{
    ASSERT_TRUE(fault::configure("lock=1", 7));
    for (const char *bad :
         {"bogus_site=1", "lock=1.5", "lock=-0.1", "lock", "=0.5",
          "lock@=1", "lock=1,bogus_site=1", "lock=abc"}) {
        EXPECT_FALSE(fault::configure(bad, 7)) << bad;
        // The previous rules survive a failed configure.
        EXPECT_TRUE(fault::should_fail(fault::Site::Lock)) << bad;
    }
    // The empty spec is valid and clears all rules.
    ASSERT_TRUE(fault::configure("", 7));
    EXPECT_FALSE(fault::should_fail(fault::Site::Lock));
}

TEST_F(FaultInjection, InjectedStoreFaultsDegradeTheCacheNotTheRun)
{
    // Every write is torn short: stores fail, the cache demotes after
    // kMaxStoreFailures, and load_or_run still returns correct results
    // throughout — no exception, no wrong data.
    ASSERT_TRUE(fault::configure("short_write=1", 7));
    const std::string dir = fresh_dir("lb_chaos_store");
    ArtifactCache cache(dir);
    const ExperimentResult want = sample_result();

    for (int i = 0; i < 5; ++i) {
        const ExperimentResult got = cache.load_or_run(
            100 + i, "gzip", [&want] { return want; });
        EXPECT_FALSE(got.from_cache) << i;
        EXPECT_EQ(serialize_result(got), serialize_result(want)) << i;
    }
    EXPECT_TRUE(cache.degraded());
    EXPECT_GE(cache.health().store_failures,
              ArtifactCache::kMaxStoreFailures);
    EXPECT_GT(cache.health().degraded_jobs, 0u);
    fs::remove_all(dir);
}

TEST_F(FaultInjection, TornRenamePublishesOnlyRejectableEntries)
{
    // A torn publish reports success but leaves half an entry; the
    // checksum/size validation must catch it on load, discard it, and
    // re-simulate — silent corruption never reaches a result.
    ASSERT_TRUE(fault::configure("rename_torn=1", 7));
    const std::string dir = fresh_dir("lb_chaos_torn");
    ArtifactCache cache(dir);
    const ExperimentResult want = sample_result();

    EXPECT_TRUE(cache.store(42, want).ok()) << "the tear is silent";
    EXPECT_TRUE(fs::exists(cache.entry_path(42)));
    EXPECT_FALSE(cache.try_load(42).has_value());
    EXPECT_FALSE(fs::exists(cache.entry_path(42)))
        << "torn entry not discarded";
    EXPECT_GE(cache.health().corrupt_entries, 1u);

    // End to end: load_or_run survives the torn store and returns the
    // simulated result.
    const ExperimentResult got =
        cache.load_or_run(42, "gzip", [&want] { return want; });
    EXPECT_EQ(serialize_result(got), serialize_result(want));
    fs::remove_all(dir);
}

TEST_F(FaultInjection, InjectedSimulationFaultIsIsolatedAndRetried)
{
    ASSERT_TRUE(fault::configure("simulate@ammp=1", 7));
    const std::vector<std::string> names = {"gzip", "ammp", "gcc"};
    ExperimentConfig config;
    config.instructions = 40'000;
    config.jobs = 2;

    SuiteOutcome outcome = run_suite_isolated(names, config);
    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_EQ(outcome.failures.front().workload, "ammp");
    EXPECT_EQ(outcome.failures.front().kind,
              util::ErrorKind::FaultInjected);
    EXPECT_EQ(outcome.failures.front().retries, kMaxJobRetries);
    EXPECT_TRUE(outcome.slots[0].has_value());
    EXPECT_FALSE(outcome.slots[1].has_value());
    EXPECT_TRUE(outcome.slots[2].has_value());
}

TEST_F(FaultInjection, ChaosSuiteSurvivorsAreByteIdenticalToCleanRun)
{
    // The acceptance demo: the full six-benchmark suite, four workers,
    // a cache directory, and a hostile mix of injected IO faults.  The
    // run must complete, and every surviving result must serialize to
    // exactly the bytes the fault-free run produces.
    const auto &names = workload::suite_names();
    ASSERT_EQ(names.size(), 6u);
    ExperimentConfig config;
    config.instructions = 40'000;
    config.jobs = 4;

    fault::reset();
    const auto reference = run_suite(names, config);

    const std::string dir = fresh_dir("lb_chaos_suite");
    config.cache_dir = dir;
    ASSERT_TRUE(fault::configure(
        "short_write=0.4,rename_torn=0.4,lock=0.3,open_read=0.2", 42));
    SuiteOutcome outcome = run_suite_isolated(names, config);
    fault::reset();
    fs::remove_all(dir);

    // IO faults only touch the cache, which degrades gracefully: every
    // job must still succeed.
    EXPECT_TRUE(outcome.failures.empty());
    EXPECT_FALSE(outcome.interrupted);
    ASSERT_EQ(outcome.slots.size(), names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
        ASSERT_TRUE(outcome.slots[i].has_value()) << names[i];
        EXPECT_EQ(serialize_result(*outcome.slots[i]),
                  serialize_result(reference[i]))
            << names[i];
    }
}
