/**
 * @file
 * Differential fuzzing of the devirtualized simulation kernel against
 * the virtual-dispatch reference path (ISSUE: the kernel's acceptance
 * gate).
 *
 * The kernel claims byte-identity: for any workload and geometry,
 * serialize_result(SimMode::Kernel) must equal
 * serialize_result(SimMode::Reference) exactly — same histograms, same
 * cache statistics, same cycle counts.  The reference arm additionally
 * disables batched fetch, so one kernel-vs-reference comparison covers
 * all three kernelizations at once: batch µop generation, the packed
 * replacement kernel, and the flattened observation chain.
 *
 * Two layers of differential:
 *
 *  - Experiment level: 1000 seeded random LoopPrograms (RNG-fed
 *    patterns included, unlike the analytic fuzzer — the kernel has no
 *    eligibility gate) across random geometries and all three
 *    ReplacementKinds, including ways > 8 shapes where the kernel
 *    silently runs the reference decision logic.  On a mismatch the
 *    failing seed is printed with a greedily minimized program.
 *
 *  - Bare cache level: identical address streams driven through a
 *    Kernel-mode and a Reference-mode Cache, asserting every
 *    AccessResult field per access — the eviction stream and, for
 *    Random replacement, the RNG draw stream must stay in lockstep,
 *    not just the end-of-run aggregates.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/artifact_cache.hpp"
#include "core/experiment.hpp"
#include "sim/cache.hpp"
#include "util/random.hpp"
#include "workload/data_pattern.hpp"
#include "workload/loop_program.hpp"

using namespace leakbound;
using namespace leakbound::core;
using workload::BlockSpec;
using workload::NodeSpec;

namespace {

constexpr Addr kCodeBase = 0x0040'0000;
constexpr Addr kHeapBase = 0x1000'0000;

/** One pattern-pool entry, regenerable (the minimizer rebuilds). */
struct PatternSpec
{
    enum class Kind { Sequential, Strided, Random, Chase, Stack } kind;
    std::uint64_t a = 0; ///< region bytes / elements / nodes / depth
    std::uint64_t b = 0; ///< step / stride / align / node bytes
    std::uint64_t seed = 0;
};

/** A regenerable fuzz program: spec tree + pattern pool + geometry. */
struct ProgramSpec
{
    std::uint64_t seed = 0;
    std::vector<NodeSpec> nodes;
    std::vector<PatternSpec> patterns;
    sim::HierarchyConfig hierarchy;
    std::uint64_t instructions = 0;
};

workload::DataPatternPtr
build_pattern(const PatternSpec &spec, std::size_t index)
{
    const Addr base = kHeapBase + static_cast<Addr>(index) * (1 << 22);
    switch (spec.kind) {
      case PatternSpec::Kind::Sequential:
        return workload::make_sequential(
            base, spec.a, static_cast<std::uint32_t>(spec.b));
      case PatternSpec::Kind::Strided:
        return workload::make_strided(base, spec.a, 8, spec.b);
      case PatternSpec::Kind::Random:
        return workload::make_random(
            base, spec.a, static_cast<std::uint32_t>(spec.b), spec.seed);
      case PatternSpec::Kind::Chase:
        return workload::make_pointer_chase(
            base, spec.a, static_cast<std::uint32_t>(spec.b), spec.seed);
      case PatternSpec::Kind::Stack:
        return workload::make_stack(base + spec.a, spec.a, spec.seed);
    }
    return nullptr;
}

workload::WorkloadPtr
build_program(const ProgramSpec &spec)
{
    std::vector<workload::DataPatternPtr> pool;
    for (std::size_t i = 0; i < spec.patterns.size(); ++i)
        pool.push_back(build_pattern(spec.patterns[i], i));
    std::vector<NodeSpec> nodes = spec.nodes; // LoopProgram consumes it
    return std::make_unique<workload::LoopProgram>(
        "fuzz", kCodeBase, std::move(nodes), std::move(pool), spec.seed);
}

sim::ReplacementKind
random_replacement(util::Rng &rng)
{
    switch (rng.next_below(3)) {
      case 0: return sim::ReplacementKind::Lru;
      case 1: return sim::ReplacementKind::Fifo;
      default: return sim::ReplacementKind::Random;
    }
}

/**
 * Small geometries keep 2000 simulations fast while covering
 * direct-mapped through 8-way packed-kernel shapes plus occasional
 * 16-way sets that exercise the kernel's silent reference fallback.
 */
sim::HierarchyConfig
random_hierarchy(util::Rng &rng)
{
    sim::HierarchyConfig h;
    const std::uint32_t line = 32u << rng.next_below(2); // 32 or 64

    h.l1i.name = "kz-l1i";
    h.l1i.line_bytes = line;
    h.l1i.associativity = 1u << rng.next_below(4); // 1, 2, 4, 8
    h.l1i.size_bytes =
        (1024u << rng.next_below(3)) * h.l1i.associativity;
    h.l1i.hit_latency = 1;
    h.l1i.replacement = random_replacement(rng);

    h.l1d.name = "kz-l1d";
    h.l1d.line_bytes = line;
    h.l1d.associativity = 1u << rng.next_below(4);
    h.l1d.size_bytes =
        (1024u << rng.next_below(3)) * h.l1d.associativity;
    h.l1d.hit_latency = 1 + rng.next_below(3);
    h.l1d.replacement = random_replacement(rng);

    h.l2.name = "kz-l2";
    h.l2.line_bytes = line;
    // 1..16 ways: the 16-way draw runs the reference logic inside a
    // Kernel-mode cache (cannot pack a rank word), so the fallback
    // seam is part of the fuzzed surface.
    h.l2.associativity = 1u << rng.next_below(5);
    h.l2.size_bytes =
        (8192u << rng.next_below(3)) * h.l2.associativity;
    h.l2.hit_latency = 5 + rng.next_below(5);
    h.l2.replacement = random_replacement(rng);

    h.memory_latency = 20 + rng.next_below(80);
    return h;
}

PatternSpec
random_pattern(util::Rng &rng)
{
    PatternSpec p{};
    switch (rng.next_below(5)) {
      case 0:
        p.kind = PatternSpec::Kind::Sequential;
        p.a = 512u << rng.next_below(5); // 512B..8KB region
        p.b = 4u << rng.next_below(2);   // 4 or 8 byte step
        break;
      case 1:
        p.kind = PatternSpec::Kind::Strided;
        p.a = 256u << rng.next_below(4); // 256..2048 elements
        p.b = 1u << rng.next_below(10);  // 1..512 element stride
        break;
      case 2:
        p.kind = PatternSpec::Kind::Random;
        p.a = 1024u << rng.next_below(6); // 1KB..32KB working set
        p.b = 8;
        p.seed = rng.next_u64();
        break;
      case 3:
        p.kind = PatternSpec::Kind::Chase;
        p.a = 16u << rng.next_below(5); // 16..256 nodes
        p.b = 32u << rng.next_below(3); // 32..128 byte nodes
        p.seed = rng.next_u64();
        break;
      default:
        p.kind = PatternSpec::Kind::Stack;
        p.a = 512u << rng.next_below(3); // 512B..2KB stack depth
        p.seed = rng.next_u64();
        break;
    }
    return p;
}

/** A node tree of depth <= 3; trip counts may be random (min < max). */
NodeSpec
random_node(util::Rng &rng, int depth, std::size_t num_patterns)
{
    const bool leaf = depth >= 3 || rng.next_bool(0.45);
    if (leaf) {
        BlockSpec block;
        block.instrs = static_cast<std::uint32_t>(rng.next_in(4, 48));
        block.store_fraction = rng.next_double();
        if (rng.next_bool(0.8)) {
            block.pattern =
                static_cast<int>(rng.next_below(num_patterns));
            block.mem_fraction = 0.1 + 0.5 * rng.next_double();
        } else {
            block.pattern = -1; // pure compute block
            block.mem_fraction = 0.0;
        }
        return NodeSpec::make_block(block);
    }
    std::uint64_t min_trips;
    std::uint64_t max_trips;
    const std::uint64_t shape = rng.next_below(8);
    if (shape == 0) {
        min_trips = max_trips = 0; // still draws its trip count
    } else if (shape == 1) {
        min_trips = max_trips = 1;
    } else {
        min_trips = rng.next_in(1, 6);
        max_trips = min_trips + rng.next_below(8);
    }
    const std::size_t children = rng.next_in(1, 3);
    std::vector<NodeSpec> body;
    for (std::size_t i = 0; i < children; ++i)
        body.push_back(random_node(rng, depth + 1, num_patterns));
    return NodeSpec::make_loop(min_trips, max_trips, std::move(body));
}

ProgramSpec
random_program(std::uint64_t seed)
{
    util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 7);
    ProgramSpec spec;
    spec.seed = seed;
    const std::size_t npatterns = rng.next_in(1, 4);
    for (std::size_t i = 0; i < npatterns; ++i)
        spec.patterns.push_back(random_pattern(rng));
    const std::size_t nnodes = rng.next_in(1, 4);
    for (std::size_t i = 0; i < nnodes; ++i)
        spec.nodes.push_back(random_node(rng, 0, npatterns));
    spec.hierarchy = random_hierarchy(rng);
    // Budgets cross many fetch-ring refills and both partial-group and
    // workload-truncated endings.
    spec.instructions = 4'000 + rng.next_below(16'000);
    return spec;
}

ExperimentConfig
config_for(const ProgramSpec &spec, sim::SimMode path)
{
    ExperimentConfig config;
    config.instructions = spec.instructions;
    config.hierarchy = spec.hierarchy;
    config.engine = Engine::Sim;
    config.sim_path = path;
    return config;
}

/** Run one spec under both decision paths; true iff byte-identical. */
bool
equivalent(const ProgramSpec &spec)
{
    auto kernel_workload = build_program(spec);
    const ExperimentResult kernel = run_experiment(
        *kernel_workload, config_for(spec, sim::SimMode::Kernel));
    auto reference_workload = build_program(spec);
    const ExperimentResult reference = run_experiment(
        *reference_workload, config_for(spec, sim::SimMode::Reference));
    return serialize_result(kernel) == serialize_result(reference);
}

std::string
describe_node(const NodeSpec &node)
{
    if (node.kind == NodeSpec::Kind::Block) {
        char buf[128];
        std::snprintf(buf, sizeof buf, "block{instrs=%u mem=%.2f p=%d}",
                      node.block.instrs, node.block.mem_fraction,
                      node.block.pattern);
        return buf;
    }
    std::string out = "loop{trips=" + std::to_string(node.min_trips) +
                      ".." + std::to_string(node.max_trips) + " [";
    for (const NodeSpec &child : node.body)
        out += describe_node(child) + " ";
    out += "]}";
    return out;
}

/**
 * Greedy structural minimization: repeatedly drop top-level nodes
 * while the mismatch persists, then print what is left.
 */
std::string
minimize_and_describe(ProgramSpec spec)
{
    bool shrunk = true;
    while (shrunk) {
        shrunk = false;
        for (std::size_t i = 0;
             i < spec.nodes.size() && spec.nodes.size() > 1; ++i) {
            ProgramSpec candidate = spec;
            candidate.nodes.erase(candidate.nodes.begin() +
                                  static_cast<std::ptrdiff_t>(i));
            if (!equivalent(candidate)) {
                spec = std::move(candidate);
                shrunk = true;
                break;
            }
        }
    }
    std::string out = "seed=" + std::to_string(spec.seed) +
                      " instructions=" +
                      std::to_string(spec.instructions) + "\n";
    for (const NodeSpec &node : spec.nodes)
        out += "  " + describe_node(node) + "\n";
    out += "  patterns=" + std::to_string(spec.patterns.size()) +
           " l1i=" + std::to_string(spec.hierarchy.l1i.size_bytes) +
           "B/" + std::to_string(spec.hierarchy.l1i.associativity) +
           "w l1d=" + std::to_string(spec.hierarchy.l1d.size_bytes) +
           "B/" + std::to_string(spec.hierarchy.l1d.associativity) +
           "w l2=" + std::to_string(spec.hierarchy.l2.size_bytes) + "B";
    return out;
}

/** A small random CacheConfig for the bare-cache stream differential. */
sim::CacheConfig
random_cache(util::Rng &rng, sim::ReplacementKind kind)
{
    sim::CacheConfig c;
    c.name = "kz-bare";
    c.line_bytes = 16u << rng.next_below(3); // 16, 32, 64
    c.associativity = 1u << rng.next_below(4); // 1..8 (packable)
    c.size_bytes = (c.line_bytes * c.associativity)
                   << rng.next_below(4); // 1..8 sets
    c.hit_latency = 1;
    c.replacement = kind;
    return c;
}

} // namespace

/**
 * The main gate: 1000 random programs, every one byte-identical
 * across the kernel and reference decision paths.
 */
TEST(KernelEquivalence, FuzzedExperimentsAreByteIdentical)
{
    constexpr std::uint64_t kPrograms = 1000;
    for (std::uint64_t seed = 1; seed <= kPrograms; ++seed) {
        const ProgramSpec spec = random_program(seed);
        if (!equivalent(spec)) {
            FAIL() << "kernel/reference divergence; minimized:\n"
                   << minimize_and_describe(spec);
        }
    }
}

/**
 * Bare-cache lockstep: identical address streams through Kernel- and
 * Reference-mode caches must agree on every per-access observable —
 * the eviction stream (evicted/victim_block) and, under Random
 * replacement, the RNG draw stream, not just end-of-run aggregates.
 */
TEST(KernelEquivalence, BareCacheStreamsMatch)
{
    constexpr std::uint64_t kGeometries = 60;
    constexpr std::uint64_t kAccesses = 20'000;
    for (const sim::ReplacementKind kind :
         {sim::ReplacementKind::Lru, sim::ReplacementKind::Fifo,
          sim::ReplacementKind::Random}) {
        for (std::uint64_t g = 1; g <= kGeometries; ++g) {
            util::Rng rng(g * 0x9e3779b97f4a7c15ULL +
                          static_cast<std::uint64_t>(kind));
            const sim::CacheConfig config = random_cache(rng, kind);
            const std::uint64_t cache_seed = rng.next_u64() | 1;
            sim::Cache kernel(config, cache_seed, sim::SimMode::Kernel);
            sim::Cache reference(config, cache_seed,
                                 sim::SimMode::Reference);
            ASSERT_TRUE(kernel.kernel_active());
            ASSERT_FALSE(reference.kernel_active());

            // A footprint a few times the cache keeps the miss rate
            // high enough that evictions dominate the stream.
            const std::uint64_t span = config.size_bytes * 4;
            for (std::uint64_t i = 0; i < kAccesses; ++i) {
                const Addr addr = rng.next_below(span);
                const sim::AccessResult k = kernel.access(addr);
                const sim::AccessResult r = reference.access(addr);
                ASSERT_EQ(k.hit, r.hit)
                    << "geometry " << g << " access " << i;
                ASSERT_EQ(k.frame, r.frame)
                    << "geometry " << g << " access " << i;
                ASSERT_EQ(k.evicted, r.evicted)
                    << "geometry " << g << " access " << i;
                ASSERT_EQ(k.victim_block, r.victim_block)
                    << "geometry " << g << " access " << i;
            }
            EXPECT_EQ(kernel.stats().hits, reference.stats().hits);
            EXPECT_EQ(kernel.stats().evictions,
                      reference.stats().evictions);
            EXPECT_GT(kernel.stats().evictions, 0u);

            // Snapshot-able policies must also agree on the canonical
            // decision state (Random appends nothing on both sides).
            std::vector<std::uint64_t> ks;
            std::vector<std::uint64_t> rs;
            ASSERT_EQ(kernel.append_state(ks),
                      reference.append_state(rs));
            EXPECT_EQ(ks, rs);
        }
    }
}

/**
 * Geometries the kernel cannot pack (ways > 8) silently run the
 * reference logic — and must still match a Reference-mode twin.
 */
TEST(KernelEquivalence, WideSetsFallBackToReference)
{
    sim::CacheConfig config;
    config.name = "kz-wide";
    config.line_bytes = 32;
    config.associativity = 16;
    config.size_bytes = 32u * 16 * 4; // 4 sets
    config.hit_latency = 1;
    for (const sim::ReplacementKind kind :
         {sim::ReplacementKind::Lru, sim::ReplacementKind::Fifo,
          sim::ReplacementKind::Random}) {
        config.replacement = kind;
        sim::Cache kernel(config, 99, sim::SimMode::Kernel);
        sim::Cache reference(config, 99, sim::SimMode::Reference);
        EXPECT_FALSE(kernel.kernel_active());
        util::Rng rng(4242);
        for (std::uint64_t i = 0; i < 50'000; ++i) {
            const Addr addr = rng.next_below(config.size_bytes * 6);
            const sim::AccessResult k = kernel.access(addr);
            const sim::AccessResult r = reference.access(addr);
            ASSERT_EQ(k.hit, r.hit) << "access " << i;
            ASSERT_EQ(k.frame, r.frame) << "access " << i;
            ASSERT_EQ(k.victim_block, r.victim_block) << "access " << i;
        }
    }
}

/**
 * reset() must clear the kernel's derived state (rank words and the
 * same-block filter): a reset cache replays a stream identically to a
 * fresh one.
 */
TEST(KernelEquivalence, ResetRestoresColdBehaviour)
{
    for (const sim::ReplacementKind kind :
         {sim::ReplacementKind::Lru, sim::ReplacementKind::Fifo,
          sim::ReplacementKind::Random}) {
        util::Rng geo(7);
        sim::CacheConfig config = random_cache(geo, kind);
        sim::Cache once(config, 5, sim::SimMode::Kernel);
        sim::Cache twice(config, 5, sim::SimMode::Kernel);

        util::Rng warm(123);
        for (std::uint64_t i = 0; i < 5'000; ++i)
            twice.access(warm.next_below(config.size_bytes * 4));
        twice.reset();

        util::Rng replay_a(321);
        util::Rng replay_b(321);
        for (std::uint64_t i = 0; i < 5'000; ++i) {
            const Addr a = replay_a.next_below(config.size_bytes * 4);
            const Addr b = replay_b.next_below(config.size_bytes * 4);
            const sim::AccessResult ra = once.access(a);
            const sim::AccessResult rb = twice.access(b);
            ASSERT_EQ(ra.hit, rb.hit) << "access " << i;
            ASSERT_EQ(ra.frame, rb.frame) << "access " << i;
            ASSERT_EQ(ra.victim_block, rb.victim_block)
                << "access " << i;
        }
        EXPECT_EQ(once.stats().hits, twice.stats().hits);
    }
}
