/**
 * @file
 * The leakboundd server: listeners, session threads, stats, drain.
 *
 * Threading/ownership model (DESIGN.md §6): the thread that calls
 * serve() runs the accept loop; every accepted connection gets one
 * session thread that speaks strict request/response frames until the
 * peer hangs up.  Session threads never touch each other's state —
 * they share exactly two synchronized objects: the Scheduler (which
 * owns all simulation compute) and the server's stats block (one
 * mutex).  The accept loop polls with a short timeout so it observes
 * both the cooperative interrupt flag (SIGINT/SIGTERM) and
 * request_drain(); on either it stops accepting, drains the scheduler
 * (in-flight experiments finish, queued ones fail with ShuttingDown),
 * half-closes every idle session's read side so blocked recvs see EOF,
 * and joins all session threads before serve() returns.
 */

#ifndef LEAKBOUND_SERVE_SERVER_HPP
#define LEAKBOUND_SERVE_SERVER_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "util/net.hpp"
#include "util/stats.hpp"
#include "util/status.hpp"

namespace leakbound::serve {

/** Shape of one daemon instance. */
struct ServerConfig
{
    /** Unix-domain socket path ("" = no unix listener). */
    std::string unix_path;
    /** TCP listen address; used when listen_tcp is true. */
    std::string tcp_host = "127.0.0.1";
    std::uint16_t tcp_port = 0; ///< 0 = kernel-assigned ephemeral port
    bool listen_tcp = false;
    /** Ceiling a request's "instructions" must stay under. */
    std::uint64_t max_instructions = core::kDefaultMaxRequestInstructions;
    /** Frame payload cap for both directions. */
    std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
    /** Concurrent sessions; accepts beyond this are turned away. */
    unsigned max_sessions = 64;
    /** Accept-loop poll period (drain latency upper bound). */
    int poll_interval_ms = 100;
    SchedulerConfig scheduler;
};

/** One daemon: construct, start(), serve(); thread-safe stats/drain. */
class Server
{
  public:
    explicit Server(ServerConfig config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind the configured listeners (call once, before serve()). */
    util::Status start();

    /** The bound TCP port (after start(); 0 when no TCP listener). */
    std::uint16_t tcp_port() const { return tcp_port_; }

    /**
     * Run the accept loop on the calling thread until an interrupt or
     * request_drain(), then drain and join everything.  Returns ok on
     * a clean drain.
     */
    util::Status serve();

    /** Ask serve() to drain and return (thread-safe, idempotent). */
    void request_drain() { drain_requested_.store(true); }

    /** Assemble the /stats view (also what sessions reply with). */
    StatsSnapshot stats() const;

  private:
    struct Session
    {
        util::net::Socket socket;
        std::thread thread;
        bool finished = false;
    };

    void run_session(Session *session);
    /** Handle one decoded frame; returns false to end the session. */
    bool handle_frame(const util::net::Socket &socket,
                      const std::string &frame);
    util::Status reply(const util::net::Socket &socket,
                       const std::string &payload);
    void reap_finished_sessions();
    void note_protocol_error();

    ServerConfig config_;
    std::unique_ptr<Scheduler> scheduler_;
    util::net::Socket unix_listener_;
    util::net::Socket tcp_listener_;
    std::uint16_t tcp_port_ = 0;
    bool started_ = false;
    std::atomic<bool> drain_requested_{false};
    std::chrono::steady_clock::time_point started_at_;

    mutable std::mutex mutex_; ///< guards sessions_ and the counters below
    std::list<Session> sessions_;
    std::uint64_t sessions_accepted_ = 0;
    std::uint64_t sessions_rejected_ = 0;
    std::uint64_t protocol_errors_ = 0;
    util::LatencyRecorder latency_ms_;
};

} // namespace leakbound::serve

#endif // LEAKBOUND_SERVE_SERVER_HPP
