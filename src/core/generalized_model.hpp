/**
 * @file
 * The generalized model for optimal leakage power savings (paper
 * Section 3.3).
 *
 * All individual assumptions — transition durations, per-mode leakage
 * powers, the induced-miss energy, and the interval population — enter
 * as explicit inputs; the outputs are the inflection points and the
 * optimal saving percentages of the OPT-Drowsy, OPT-Sleep and
 * OPT-Hybrid methods.  This is the library analogue of the "coded in C
 * and publicly available" model the paper describes, and the engine
 * behind the Table 2 reproduction.
 */

#ifndef LEAKBOUND_CORE_GENERALIZED_MODEL_HPP
#define LEAKBOUND_CORE_GENERALIZED_MODEL_HPP

#include <vector>

#include "core/inflection.hpp"
#include "core/savings.hpp"
#include "interval/interval_histogram.hpp"
#include "power/technology.hpp"

namespace leakbound::core {

/** Inputs of the generalized model. */
struct GeneralizedModelInputs
{
    power::TechnologyParams tech;
    /** Paper accounting (CD on every slept inner interval) when true. */
    bool charge_refetch = true;
};

/** Outputs: inflection points + the three optimal saving results. */
struct GeneralizedModelResult
{
    InflectionPoints points;
    SavingsResult opt_drowsy;
    SavingsResult opt_sleep;  ///< aggressive: sleeps everything above b
    SavingsResult opt_hybrid;
};

/**
 * Every histogram edge the model's three policies need for exact
 * evaluation; pass to IntervalHistogramSet::default_edges as extras
 * before collecting intervals.
 */
std::vector<Cycles>
generalized_model_thresholds(const GeneralizedModelInputs &inputs);

/**
 * Run the model on an interval population.  The set's edges must cover
 * generalized_model_thresholds(inputs) (panics otherwise).
 */
GeneralizedModelResult
run_generalized_model(const GeneralizedModelInputs &inputs,
                      const interval::IntervalHistogramSet &set);

} // namespace leakbound::core

#endif // LEAKBOUND_CORE_GENERALIZED_MODEL_HPP
