/**
 * @file
 * Health counters for the artifact cache's degradation ladder.
 *
 * The cache is an accelerator, never a correctness dependency: any
 * failure it hits (unwritable directory, corrupt entry, lock timeout)
 * demotes it one rung — retry, then simulate-without-caching, then
 * cache-off-for-the-run — and the suite still produces correct
 * results.  This struct is the accounting for that ladder: every
 * degradation is counted and surfaced in the JSON bench report's
 * "cache_health" object, so a run that silently lost its warm-cache
 * speedup is visible in the report instead of just mysteriously slow.
 *
 * Lives in its own header (not artifact_cache.hpp) because both
 * experiment.hpp (SuiteOutcome) and artifact_cache.hpp need it, and
 * artifact_cache.hpp already includes experiment.hpp.
 */

#ifndef LEAKBOUND_CORE_CACHE_HEALTH_HPP
#define LEAKBOUND_CORE_CACHE_HEALTH_HPP

#include <cstdint>

namespace leakbound::core {

/** Snapshot of one ArtifactCache's accumulated trouble. */
struct CacheHealth
{
    /** Entries that failed to serialize+publish (entry not cached). */
    std::uint64_t store_failures = 0;
    /** Entries discarded for magic/version/checksum/decode mismatch. */
    std::uint64_t corrupt_entries = 0;
    /** Stale locks broken (holder presumed dead). */
    std::uint64_t lock_breaks = 0;
    /** Lock waits that timed out (job simulated without caching). */
    std::uint64_t lock_timeouts = 0;
    /** Backoff sleeps while waiting on another writer's lock. */
    std::uint64_t lock_retries = 0;
    /** Jobs that ran with the cache demoted to pass-through. */
    std::uint64_t degraded_jobs = 0;
    /** Whether the cache finished the run demoted to pass-through. */
    bool degraded = false;

    /** Fold another snapshot in (suite reports aggregate per-run). */
    void
    accumulate(const CacheHealth &other)
    {
        store_failures += other.store_failures;
        corrupt_entries += other.corrupt_entries;
        lock_breaks += other.lock_breaks;
        lock_timeouts += other.lock_timeouts;
        lock_retries += other.lock_retries;
        degraded_jobs += other.degraded_jobs;
        degraded = degraded || other.degraded;
    }

    /** Anything worth reporting? */
    bool
    any() const
    {
        return store_failures || corrupt_entries || lock_breaks ||
               lock_timeouts || lock_retries || degraded_jobs || degraded;
    }
};

} // namespace leakbound::core

#endif // LEAKBOUND_CORE_CACHE_HEALTH_HPP
