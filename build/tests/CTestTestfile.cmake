# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_energy_model[1]_include.cmake")
include("/root/repo/build/tests/test_inflection[1]_include.cmake")
include("/root/repo/build/tests/test_policies[1]_include.cmake")
include("/root/repo/build/tests/test_savings[1]_include.cmake")
include("/root/repo/build/tests/test_state_model[1]_include.cmake")
include("/root/repo/build/tests/test_optimal[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_collector[1]_include.cmake")
include("/root/repo/build/tests/test_interval_histogram[1]_include.cmake")
include("/root/repo/build/tests/test_prefetch[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_trace_io[1]_include.cmake")
include("/root/repo/build/tests/test_experiment[1]_include.cmake")
include("/root/repo/build/tests/test_generalized_model[1]_include.cmake")
include("/root/repo/build/tests/test_paper_properties[1]_include.cmake")
include("/root/repo/build/tests/test_belady[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_cache_geometry[1]_include.cmake")
