/**
 * @file
 * Interval anatomy (paper Figure 2 + Section 3.1): dissect where a
 * benchmark's cache frame-time lives across interval lengths.
 *
 * Two parts:
 *  1. The paper's Figure 2 demo: the HR two-level loop, showing how
 *     the `add` instruction's re-access interval tracks the inner
 *     loop range — run it with different --inner-max values.
 *  2. A length-bucketed breakdown (count and, more importantly,
 *     *time mass*) of any suite benchmark's I/D interval populations,
 *     the quantity every leakage bound in the paper is built from.
 *
 * Usage: interval_anatomy [--benchmark gcc] [--instructions 2000000]
 *                         [--inner-max 256]
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "core/inflection.hpp"
#include "util/cli.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"
#include "workload/spec_suite.hpp"

namespace {

using namespace leakbound;

/** Print count/time mass per length bucket for one cache. */
void
print_breakdown(const char *label,
                const interval::IntervalHistogramSet &set)
{
    struct Bucket
    {
        Cycles lo, hi;
        const char *name;
        std::uint64_t count = 0;
        double time = 0;
        double nl_time = 0, stride_time = 0;
    };
    // Bucket edges chosen around the 70nm decision points (6, 1057)
    // plus decade splits of the medium range that drives Fig. 7.
    Bucket buckets[] = {
        {0, 7, "(0,6] active", 0, 0, 0, 0},
        {7, 38, "(6,37]", 0, 0, 0, 0},
        {38, 1058, "(37,1057] drowsy", 0, 0, 0, 0},
        {1058, 10001, "(1057,10K]", 0, 0, 0, 0},
        {10001, 103085, "(10K,103K]", 0, 0, 0, 0},
        {103085, ~0ULL, "(103K,inf)", 0, 0, 0, 0},
    };

    double trailing_time = 0, untouched_time = 0, leading_time = 0;
    set.for_each_cell([&](const interval::CellRef &cell) {
        if (cell.kind == interval::IntervalKind::Untouched) {
            untouched_time += static_cast<double>(cell.sum);
            return;
        }
        if (cell.kind == interval::IntervalKind::Trailing) {
            trailing_time += static_cast<double>(cell.sum);
            return;
        }
        if (cell.kind == interval::IntervalKind::Leading) {
            leading_time += static_cast<double>(cell.sum);
            return;
        }
        for (Bucket &b : buckets) {
            if (cell.lower >= b.lo && cell.upper <= b.hi) {
                b.count += cell.count;
                b.time += static_cast<double>(cell.sum);
                if (cell.pf == interval::PrefetchClass::NextLine)
                    b.nl_time += static_cast<double>(cell.sum);
                if (cell.pf == interval::PrefetchClass::Stride)
                    b.stride_time += static_cast<double>(cell.sum);
                break;
            }
        }
    });

    const double baseline = set.baseline_energy();
    util::Table table(std::string(label) +
                      " inner intervals by length (70nm regimes)");
    table.set_header({"bucket", "count", "time mass", "NL time",
                      "stride time"});
    for (const Bucket &b : buckets) {
        table.add_row({b.name, util::format_commas(b.count),
                       util::format_percent(b.time / baseline),
                       util::format_percent(b.nl_time / baseline),
                       util::format_percent(b.stride_time / baseline)});
    }
    table.add_separator();
    table.add_row({"leading", "-",
                   util::format_percent(leading_time / baseline), "-",
                   "-"});
    table.add_row({"trailing", "-",
                   util::format_percent(trailing_time / baseline), "-",
                   "-"});
    table.add_row({"untouched frames", "-",
                   util::format_percent(untouched_time / baseline), "-",
                   "-"});
    table.print();
}

} // namespace

int
main(int argc, char **argv)
{
    util::Cli cli("interval_anatomy",
                  "dissect cache access interval populations");
    cli.add_flag("benchmark", "suite benchmark to dissect", "gcc");
    cli.add_flag("instructions", "dynamic instructions", "2000000");
    cli.add_flag("inner-max", "HR-loop inner range (Fig. 2 demo)", "256");
    cli.parse(argc, argv);

    core::ExperimentConfig config;
    config.instructions = cli.get_u64("instructions");
    config.extra_edges = core::standard_extra_edges();

    // Part 1: the Figure 2 demo at three inner-loop ranges.
    std::printf("Figure 2 demo: interval of the outer-loop `add` "
                "instruction vs inner range\n");
    for (std::uint64_t range :
         {std::uint64_t{8}, std::uint64_t{64}, cli.get_u64("inner-max")}) {
        workload::WorkloadPtr hr = workload::make_hr_loop(2, range);
        core::ExperimentConfig small = config;
        small.instructions = 200'000;
        core::ExperimentResult run = core::run_experiment(*hr, small);
        // The add-block line's re-access interval shows up as the
        // longest populated inner bucket in the tiny I-cache set;
        // report mean inner interval instead for a compact signal.
        double time = 0;
        std::uint64_t count = 0;
        run.icache.intervals.for_each_cell(
            [&](const interval::CellRef &cell) {
                if (cell.kind == interval::IntervalKind::Inner &&
                    cell.lower >= 7) {
                    time += static_cast<double>(cell.sum);
                    count += cell.count;
                }
            });
        std::printf("  inner range [2,%llu]: mean non-tiny I-interval "
                    "= %.0f cycles\n",
                    static_cast<unsigned long long>(range),
                    count ? time / static_cast<double>(count) : 0.0);
    }

    // Part 2: the full benchmark dissection.
    workload::WorkloadPtr bench =
        workload::make_benchmark(cli.get("benchmark"));
    core::ExperimentResult run = core::run_experiment(*bench, config);
    std::printf("\n%s: %llu cycles, ipc %.2f, l1i miss %.2f%%, "
                "l1d miss %.2f%%\n\n",
                run.workload.c_str(),
                static_cast<unsigned long long>(run.core.cycles),
                run.core.ipc(), run.icache.stats.miss_rate() * 100,
                run.dcache.stats.miss_rate() * 100);
    print_breakdown("I-cache", run.icache.intervals);
    std::printf("\n");
    print_breakdown("D-cache", run.dcache.intervals);
    return 0;
}
