# Empty compiler generated dependencies file for leakbound.
# This may be replaced when dependencies are built.
