/**
 * @file
 * CACTI-lite: a parametric model of the dynamic energy of a cache read.
 *
 * The paper takes the induced-miss re-fetch energy CD from CACTI 3.0
 * [15].  The calibrated per-node CD values live in power/technology.cpp;
 * this module provides the *trend* model used for extensions (custom
 * cache geometries, ablations over L2 size).  It follows CACTI's
 * first-order structure: energy = decode + wordline + bitline + sense +
 * output drive, with bitline energy dominating and scaling as
 * (rows × Vdd² × feature).  Outputs are in the same normalized
 * LU·cycles used everywhere (scaled so the default 2MB L2 at 70nm
 * reproduces the calibrated CD).
 */

#ifndef LEAKBOUND_POWER_CACTI_LITE_HPP
#define LEAKBOUND_POWER_CACTI_LITE_HPP

#include <cstdint>

#include "power/technology.hpp"

namespace leakbound::power {

/** Geometry of the cache being read on a re-fetch. */
struct CactiGeometry
{
    std::uint64_t size_bytes = 2 * 1024 * 1024; ///< 2MB unified L2
    std::uint32_t line_bytes = 64;              ///< line transferred
    std::uint32_t associativity = 1;            ///< direct-mapped L2
    std::uint32_t banks = 4;                    ///< sub-banking factor
};

/**
 * Relative dynamic read energy of one access to the given geometry in
 * arbitrary units; meaningful only as ratios between geometries/nodes.
 */
double relative_read_energy(const CactiGeometry &geom,
                            const TechnologyParams &tech);

/**
 * Re-fetch energy CD in LU·cycles for @p geom at @p tech, anchored so
 * the default geometry reproduces tech.refetch_energy exactly.  Use
 * this to ask "what would CD be if the L2 were 4x larger?".
 */
Energy scaled_refetch_energy(const CactiGeometry &geom,
                             const TechnologyParams &tech);

} // namespace leakbound::power

#endif // LEAKBOUND_POWER_CACTI_LITE_HPP
