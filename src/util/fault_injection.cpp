/**
 * @file
 * Implementation of the deterministic fault injector.
 *
 * This entire translation unit is empty in release builds: the header
 * provides constant-false inlines when LEAKBOUND_FAULT_INJECTION is
 * off, and the compiled-out CTest greps the binary for the marker
 * string below to prove no injector code was linked.
 */

#include "util/fault_injection.hpp"

#if defined(LEAKBOUND_FAULT_INJECTION) && LEAKBOUND_FAULT_INJECTION

#include <array>
#include <atomic>
#include <cstdlib>
#include <vector>

#include "util/logging.hpp"
#include "util/random.hpp"

namespace leakbound::util::fault {

namespace {

/**
 * Marker literal that exists only in fault-injection builds; the
 * chaos_injector_compiled_out test asserts its absence from release
 * binaries.  It is kept alive by the configure_from_env() warn below.
 */
constexpr const char kInjectorMarker[] = "LEAKBOUND_FAULT_INJECTOR_ACTIVE";

/** One `site[@match]=rate` rule. */
struct Rule
{
    double rate = 0.0;
    std::string match; ///< substring filter on the probe tag; "" = all
};

struct State
{
    std::uint64_t seed = 0x1eafb01dULL;
    std::array<std::vector<Rule>, kNumFaultSites> rules;
    std::array<std::atomic<std::uint64_t>, kNumFaultSites> draws{};
    std::array<std::atomic<std::uint64_t>, kNumFaultSites> injected{};
};

State &
state()
{
    static State s;
    return s;
}

std::size_t
index(Site site)
{
    const auto i = static_cast<std::size_t>(site);
    LEAKBOUND_ASSERT(i < kNumFaultSites, "bad fault site ", i);
    return i;
}

bool
parse_site(std::string_view name, Site &out)
{
    for (std::size_t i = 0; i < kNumFaultSites; ++i) {
        const Site site = static_cast<Site>(i);
        if (name == site_name(site)) {
            out = site;
            return true;
        }
    }
    return false;
}

/** Parse one `site[@match]=rate` clause into @p rules. */
bool
parse_clause(std::string_view clause,
             std::array<std::vector<Rule>, kNumFaultSites> &rules)
{
    const auto eq = clause.find('=');
    if (eq == std::string_view::npos || eq == 0)
        return false;
    std::string_view lhs = clause.substr(0, eq);
    const std::string_view rhs = clause.substr(eq + 1);

    Rule rule;
    const auto at = lhs.find('@');
    if (at != std::string_view::npos) {
        rule.match = std::string(lhs.substr(at + 1));
        lhs = lhs.substr(0, at);
        if (rule.match.empty())
            return false;
    }
    Site site;
    if (!parse_site(lhs, site))
        return false;

    char *end = nullptr;
    const std::string rate_str(rhs);
    rule.rate = std::strtod(rate_str.c_str(), &end);
    if (end == rate_str.c_str() || *end != '\0' || rule.rate < 0.0 ||
        rule.rate > 1.0)
        return false;

    rules[index(site)].push_back(std::move(rule));
    return true;
}

} // namespace

bool
configure(const std::string &spec, std::uint64_t seed)
{
    std::array<std::vector<Rule>, kNumFaultSites> rules;
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t comma = spec.find(',', start);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string_view clause =
            std::string_view(spec).substr(start, comma - start);
        if (!clause.empty() && !parse_clause(clause, rules)) {
            warn("bad fault-injection clause '", std::string(clause),
                 "' (want site[@match]=rate)");
            return false;
        }
        start = comma + 1;
    }

    State &s = state();
    s.seed = seed;
    s.rules = std::move(rules);
    for (std::size_t i = 0; i < kNumFaultSites; ++i) {
        s.draws[i].store(0, std::memory_order_relaxed);
        s.injected[i].store(0, std::memory_order_relaxed);
    }
    return true;
}

void
configure_from_env()
{
    const char *spec = std::getenv("LEAKBOUND_FAULT_INJECTION");
    if (!spec || !*spec)
        return;
    std::uint64_t seed = 0x1eafb01dULL;
    if (const char *seed_env = std::getenv("LEAKBOUND_FAULT_SEED"))
        seed = std::strtoull(seed_env, nullptr, 0);
    if (!configure(spec, seed)) {
        warn("ignoring malformed LEAKBOUND_FAULT_INJECTION spec: ", spec);
        return;
    }
    // Loud on purpose: results produced under injection must never be
    // mistaken for clean ones.  The marker literal also anchors the
    // compiled-out CTest.
    warn(kInjectorMarker, ": injecting faults per '", spec, "' (seed ",
         seed, ")");
}

bool
should_fail(Site site, std::string_view tag)
{
    State &s = state();
    const std::size_t i = index(site);
    const auto &rules = s.rules[i];
    if (rules.empty())
        return false;

    double rate = 0.0;
    for (const Rule &rule : rules) {
        if (rule.match.empty() || tag.find(rule.match) != std::string_view::npos)
            rate = std::max(rate, rule.rate);
    }
    if (rate <= 0.0)
        return false;

    // Counter-hashed draw: deterministic for a fixed (seed, site,
    // per-site call index), independent of wall clock and of the other
    // sites' traffic.
    const std::uint64_t n = s.draws[i].fetch_add(1, std::memory_order_relaxed);
    std::uint64_t x =
        s.seed ^ ((i + 1) * 0x9e3779b97f4a7c15ULL) ^ (n * 0xbf58476d1ce4e5b9ULL);
    const double draw =
        static_cast<double>(splitmix64(x) >> 11) * 0x1.0p-53;
    if (draw >= rate)
        return false;

    s.injected[i].fetch_add(1, std::memory_order_relaxed);
    return true;
}

std::uint64_t
injected_count(Site site)
{
    return state().injected[index(site)].load(std::memory_order_relaxed);
}

std::uint64_t
total_injected()
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kNumFaultSites; ++i)
        total += state().injected[i].load(std::memory_order_relaxed);
    return total;
}

void
reset()
{
    State &s = state();
    for (auto &rules : s.rules)
        rules.clear();
    for (std::size_t i = 0; i < kNumFaultSites; ++i) {
        s.draws[i].store(0, std::memory_order_relaxed);
        s.injected[i].store(0, std::memory_order_relaxed);
    }
}

} // namespace leakbound::util::fault

#endif // LEAKBOUND_FAULT_INJECTION
